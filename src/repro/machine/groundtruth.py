"""The "physical world" stand-in: a fine-grained transient thermal model.

The paper validates Mercury against a real, instrumented Pentium-III
server.  We have no hardware, so this module supplies the messier reality
Mercury must approximate (see DESIGN.md, substitution table):

* a **finer time step** (0.1 s vs. Mercury's 1 s);
* **temperature- and flow-dependent heat-transfer coefficients** — the
  paper notes real ``k`` "can vary with temperature and air-flow rates"
  and that Mercury deliberately assumes it constant; here
  ``k = k0 * (1 + alpha (T_film - T_ref)) * (flow / flow_ref)^0.8``
  (the 0.8 exponent is the classic forced-convection correlation);
* a **mildly non-linear power curve** — real component draw is not
  exactly linear in high-level utilization;
* **perturbed constants** — the true ``k`` values differ from Table 1's
  nominal figures by fixed machine-specific factors, so calibration
  (section 3.1) is a genuine fitting problem rather than a no-op.

The model is intentionally an *independent implementation* from
:mod:`repro.core.solver` (same physics family, different code and
discretization) so that agreement between the two is meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .. import units
from ..core.graph import MachineLayout

#: Reference film temperature for the k(T) correlation, Celsius.
_K_REFERENCE_TEMP = 25.0

#: Default sensitivity of k to film temperature, 1/K.
DEFAULT_K_ALPHA = 0.0018

#: Default curvature of the true power model (1.0 = exactly linear).
DEFAULT_POWER_LINEARITY = 0.92


@dataclass(frozen=True)
class PhysicalTruth:
    """The hidden parameters of the physical machine.

    ``k_factors`` maps canonical heat-edge pairs to the multiplicative
    error between the nominal (Table 1) constant and the machine's true
    one.  ``alpha`` is the temperature sensitivity of convection, and
    ``power_linearity`` blends the true power curve between linear (1.0)
    and quadratic (0.0) in utilization.
    """

    k_factors: Mapping[Tuple[str, str], float] = field(default_factory=dict)
    alpha: float = DEFAULT_K_ALPHA
    power_linearity: float = DEFAULT_POWER_LINEARITY
    fan_cfm_error: float = 1.0

    def true_k(self, key: Tuple[str, str], nominal: float) -> float:
        """The machine's actual base conductance for a heat edge."""
        return nominal * self.k_factors.get(key, 1.0)


#: The fixed truth used across the validation studies: each edge's real
#: conductance is 10-25 % away from the nominal Table 1 value, in the
#: directions one gets from estimating areas and coefficients by hand.
DEFAULT_TRUTH = PhysicalTruth(
    k_factors={
        ("Disk Platters", "Disk Shell"): 1.18,
        ("Disk Air", "Disk Shell"): 0.86,
        ("CPU", "CPU Air"): 1.22,
        ("PS Air", "Power Supply"): 0.90,
        ("Motherboard", "Void Space Air"): 1.15,
        ("CPU", "Motherboard"): 0.80,
    },
    alpha=DEFAULT_K_ALPHA,
    power_linearity=DEFAULT_POWER_LINEARITY,
    fan_cfm_error=0.95,
)


class GroundTruthServer:
    """Transient thermal simulation of one physical machine.

    Uses the same vertex set as the Mercury layout it doubles for, but
    integrates with a fine internal step, variable coefficients, and the
    non-linear power curve.  Drive it with :meth:`set_utilization` and
    :meth:`advance`; read true temperatures with :meth:`temperature`
    (physical sensors with noise and quantization live in
    :mod:`repro.sensors.hardware` and wrap this).
    """

    def __init__(
        self,
        layout: MachineLayout,
        truth: PhysicalTruth = DEFAULT_TRUTH,
        internal_dt: float = 0.1,
        initial_temperature: Optional[float] = None,
    ) -> None:
        if internal_dt <= 0.0:
            raise ValueError("internal_dt must be positive")
        self.layout = layout
        self.truth = truth
        self.internal_dt = internal_dt
        self.time = 0.0
        if initial_temperature is None:
            initial_temperature = layout.inlet_temperature
        self.temperatures: Dict[str, float] = {
            name: initial_temperature for name in layout.node_names
        }
        self.utilizations: Dict[str, float] = {
            name: 0.0 for name in layout.components
        }
        self.inlet_temperature = layout.inlet_temperature
        self._fan_cfm = layout.fan_cfm * truth.fan_cfm_error
        self._nominal_flows = layout.air_flow_rates(fan_cfm=self._fan_cfm)
        self._reference_flows = layout.air_flow_rates()
        # Pre-resolve graph structure for the inner loop.
        self._incoming = {
            region: [
                (edge.src, edge.fraction) for edge in layout.incoming_air(region)
            ]
            for region in layout.air_regions
        }
        self._air_order = layout.air_order
        self._comp_edges: List[Tuple[str, str, Tuple[str, str], float]] = []
        self._air_comp_edges: Dict[str, List[Tuple[str, float]]] = {
            region: [] for region in layout.air_regions
        }
        for edge in layout.heat_edges:
            a_comp = edge.a in layout.components
            b_comp = edge.b in layout.components
            base_k = truth.true_k(edge.key, edge.k)
            if a_comp and b_comp:
                self._comp_edges.append((edge.a, edge.b, edge.key, base_k))
            else:
                region, comp = (edge.a, edge.b) if not a_comp else (edge.b, edge.a)
                self._air_comp_edges[region].append((comp, base_k))

    # -- driving --------------------------------------------------------

    def set_utilization(self, component: str, utilization: float) -> None:
        """Set a component's current utilization in [0, 1]."""
        if component not in self.utilizations:
            raise KeyError(component)
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        self.utilizations[component] = utilization

    def set_inlet_temperature(self, value: float) -> None:
        """Change the air temperature entering the case (room conditions)."""
        self.inlet_temperature = value

    def set_fan_cfm(self, value: float) -> None:
        """Change the true fan flow (ft^3/min)."""
        if value <= 0.0:
            raise ValueError("fan flow must be positive")
        self._fan_cfm = value
        self._nominal_flows = self.layout.air_flow_rates(fan_cfm=value)

    def advance(self, duration: float) -> None:
        """Advance physical time by ``duration`` seconds."""
        steps = max(1, int(round(duration / self.internal_dt)))
        dt = duration / steps
        for _ in range(steps):
            self._step(dt)
        self.time += duration

    def temperature(self, node: str) -> float:
        """True (noise-free) temperature of a node."""
        return self.temperatures[node]

    # -- physics ---------------------------------------------------------

    def _true_power(self, component: str) -> float:
        model = self.layout.components[component].power_model
        u = self.utilizations[component]
        beta = self.truth.power_linearity
        shaped = beta * u + (1.0 - beta) * u * u
        return model.idle_power + shaped * (model.max_power - model.idle_power)

    def _variable_k(self, base_k: float, t_a: float, t_b: float,
                    flow: Optional[float] = None, region: Optional[str] = None) -> float:
        film = 0.5 * (t_a + t_b)
        k = base_k * (1.0 + self.truth.alpha * (film - _K_REFERENCE_TEMP))
        if flow is not None and region is not None:
            ref = self._reference_flows.get(region, 0.0)
            if ref > 0.0 and flow > 0.0:
                k *= (flow / ref) ** 0.8
        return max(k, 0.0)

    def _step(self, dt: float) -> None:
        layout = self.layout
        temps = self.temperatures
        start = dict(temps)
        flows = self._nominal_flows
        heat: Dict[str, float] = {name: 0.0 for name in layout.components}

        for region in self._air_order:
            flow = flows.get(region, 0.0)
            if region == layout.inlet:
                t_air = self.inlet_temperature
            else:
                num = 0.0
                den = 0.0
                for src, fraction in self._incoming[region]:
                    weight = flows.get(src, 0.0) * fraction
                    num += temps[src] * weight
                    den += weight
                t_air = num / den if den > 0.0 else temps[region]
            rate = units.air_heat_capacity_rate(flow)
            for comp, base_k in self._air_comp_edges[region]:
                k = self._variable_k(base_k, start[comp], t_air, flow, region)
                if rate > 0.0:
                    t_out = start[comp] + (t_air - start[comp]) * math.exp(-k / rate)
                    q = rate * dt * (t_out - t_air)
                    t_air = t_out
                    heat[comp] -= q
            temps[region] = t_air

        for a, b, _key, base_k in self._comp_edges:
            k = self._variable_k(base_k, start[a], start[b])
            q = k * (start[a] - start[b]) * dt
            heat[a] -= q
            heat[b] += q

        for name, component in layout.components.items():
            heat[name] += self._true_power(name) * dt
            temps[name] = start[name] + heat[name] / component.heat_capacity
