"""A fully assembled simulated server: the thing Mercury is validated on.

:class:`SimulatedServer` plays the role of the instrumented Pentium-III
machine of section 3.1.  It bundles:

* the fine-grained :class:`~repro.machine.groundtruth.GroundTruthServer`
  ("the physical world");
* a workload (or manually set utilizations) driving component activity;
* simulated ``/proc`` accounting that monitord samples;
* imperfect physical sensors — a digital thermometer on the CPU heat
  sink (measuring CPU air) and the disk's internal sensor;
* optionally, P4-style performance counters on the CPU.

Everything advances on :meth:`step`; reads never mutate state, so the
same server can be observed by several daemons.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import table1
from ..core.graph import MachineLayout
from ..sensors.hardware import (
    DIGITAL_THERMOMETER,
    IN_DISK_SENSOR,
    PhysicalSensor,
)
from .groundtruth import DEFAULT_TRUTH, GroundTruthServer, PhysicalTruth
from .perfcounters import SimulatedPerformanceCounters
from .procfs import SimulatedProcFS
from .workloads import Workload

#: Default mapping from public sensor names to graph nodes and sensor
#: hardware: the paper measures the CPU *air* (thermometer on the heat
#: sink) and the disk's internal (platter) temperature.
_DEFAULT_SENSORS = {
    "cpu_air": (table1.CPU_AIR, DIGITAL_THERMOMETER),
    "disk": (table1.DISK_PLATTERS, IN_DISK_SENSOR),
}


class SimulatedServer:
    """One steppable physical machine with workload, sensors, and /proc."""

    def __init__(
        self,
        layout: MachineLayout,
        workload: Optional[Workload] = None,
        truth: PhysicalTruth = DEFAULT_TRUTH,
        seed: int = 0,
        with_counters: bool = False,
        internal_dt: float = 0.1,
    ) -> None:
        self.layout = layout
        self.workload = workload
        self.ground_truth = GroundTruthServer(
            layout, truth=truth, internal_dt=internal_dt
        )
        self.procfs = SimulatedProcFS(layout.monitored_components())
        self.sensors: Dict[str, PhysicalSensor] = {}
        for idx, (name, (node, spec)) in enumerate(sorted(_DEFAULT_SENSORS.items())):
            if node in layout.components or node in layout.air_regions:
                self.sensors[name] = spec.attach(
                    self._make_source(node), seed=seed * 101 + idx
                )
        self.counters: Optional[SimulatedPerformanceCounters] = None
        if with_counters:
            self.counters = SimulatedPerformanceCounters(seed=seed * 313 + 1)
        self.time = 0.0
        self._manual_utils: Dict[str, float] = {
            name: 0.0 for name in layout.monitored_components()
        }

    def _make_source(self, node: str):
        def source() -> float:
            return self.ground_truth.temperature(node)

        return source

    # -- driving ----------------------------------------------------------

    def set_utilization(self, component: str, utilization: float) -> None:
        """Manually set a component utilization (ignored while a workload
        is attached — the workload wins)."""
        if component not in self._manual_utils:
            raise KeyError(component)
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        self._manual_utils[component] = utilization

    def current_utilizations(self) -> Dict[str, float]:
        """The utilizations in effect right now."""
        if self.workload is not None:
            scheduled = self.workload.utilizations(self.time)
            return {
                name: scheduled.get(name, 0.0)
                for name in self.layout.monitored_components()
            }
        return dict(self._manual_utils)

    def step(self, dt: float = 1.0) -> None:
        """Advance the physical machine by ``dt`` seconds."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        utils = self.current_utilizations()
        for component, value in utils.items():
            self.ground_truth.set_utilization(component, value)
        self.procfs.accumulate(utils, dt)
        if self.counters is not None:
            self.counters.advance(utils.get(table1.CPU, 0.0), dt)
        self.ground_truth.advance(dt)
        self.time += dt

    def run(self, duration: float, dt: float = 1.0) -> None:
        """Advance the machine by ``duration`` seconds in ``dt`` steps."""
        steps = int(round(duration / dt))
        for _ in range(steps):
            self.step(dt)

    # -- environment (what fiddle emulates on the real machine) -----------

    def set_inlet_temperature(self, value: float) -> None:
        """Change the room air entering this machine's case."""
        self.ground_truth.set_inlet_temperature(value)

    def set_fan_cfm(self, value: float) -> None:
        """Change the case fan's true flow."""
        self.ground_truth.set_fan_cfm(value)

    # -- observation -------------------------------------------------------

    def read_sensor(self, name: str) -> float:
        """Read a physical sensor (noisy, biased, quantized)."""
        return self.sensors[name].read()

    def true_temperature(self, node: str) -> float:
        """Oracle access to the exact temperature (tests only; a real
        experimenter only sees :meth:`read_sensor`)."""
        return self.ground_truth.temperature(node)
