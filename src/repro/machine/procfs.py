"""Simulated ``/proc`` utilization accounting.

monitord "periodically samples the utilization of the components of the
machine on which it is running ... computed from /proc".  The real files
expose *cumulative* busy/idle counters; utilization over an interval is
the ratio of the busy-time delta to the wall-time delta.  This module
reproduces that mechanism: the simulated server accumulates busy time per
component, and :class:`ProcReader` computes interval utilizations from
counter deltas exactly the way monitord does on Linux.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

#: Linux nominal jiffy rate (USER_HZ), ticks per second.
JIFFIES_PER_SECOND = 100.0


@dataclass(frozen=True)
class ProcSnapshot:
    """Cumulative counters at one instant, in jiffies."""

    time: float
    busy_jiffies: Dict[str, float]


class SimulatedProcFS:
    """Cumulative per-component busy-time accounting for one machine."""

    def __init__(self, components: "list[str]") -> None:
        self._busy: Dict[str, float] = {name: 0.0 for name in components}
        self._time = 0.0

    def accumulate(self, utilizations: Mapping[str, float], dt: float) -> None:
        """Record ``dt`` seconds during which each component ran at the
        given utilization (components not mentioned are idle)."""
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        for name in self._busy:
            util = utilizations.get(name, 0.0)
            if not 0.0 <= util <= 1.0:
                raise ValueError(f"utilization of {name!r} out of range: {util}")
            self._busy[name] += util * dt * JIFFIES_PER_SECOND
        self._time += dt

    def snapshot(self) -> ProcSnapshot:
        """Read the current cumulative counters (like reading /proc/stat)."""
        return ProcSnapshot(time=self._time, busy_jiffies=dict(self._busy))

    @property
    def components(self) -> "list[str]":
        """Component names being accounted."""
        return list(self._busy)


class ProcReader:
    """Computes interval utilizations from successive /proc snapshots."""

    def __init__(self, procfs: SimulatedProcFS) -> None:
        self._procfs = procfs
        self._last = procfs.snapshot()

    def sample(self) -> Dict[str, float]:
        """Utilization of each component since the previous call.

        The first call measures from reader creation.  A zero-length
        interval yields all-zero utilizations (nothing can be inferred).
        """
        current = self._procfs.snapshot()
        elapsed = current.time - self._last.time
        result: Dict[str, float] = {}
        for name, busy in current.busy_jiffies.items():
            if elapsed <= 0.0:
                result[name] = 0.0
                continue
            delta = busy - self._last.busy_jiffies.get(name, 0.0)
            utilization = delta / (elapsed * JIFFIES_PER_SECOND)
            result[name] = min(max(utilization, 0.0), 1.0)
        self._last = current
        return result
