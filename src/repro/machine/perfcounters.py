"""Pentium-4-style performance counters and event-driven energy accounting.

Section 2.3 ("Mercury for modern processors"): for CPUs whose power is
poorly captured by high-level utilization, monitord instead reads the
hardware performance counters, "translates each observed performance
event into an estimated energy", converts the interval energy to an
average power, and linearly maps that power into a "low-level
utilization" in ``[0% = Pbase, 100% = Pmax]`` — so the solver itself
never changes.

:class:`SimulatedPerformanceCounters` produces cumulative event counts
from the CPU's utilization (with a seeded workload-character wobble —
the same utilization can mean different instruction mixes), and
:class:`EnergyEstimator` implements the Bellosa-style weighted-event
energy model.  The event weights are chosen so the estimate tracks the
ground truth's *non-linear* power curve, which is precisely why the
counter path beats the plain linear model on modern CPUs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..core.power import PowerModel


@dataclass(frozen=True)
class CounterSnapshot:
    """Cumulative counter values (monotone, like real MSRs)."""

    time: float
    cycles: float
    uops: float
    l2_misses: float
    memory_refs: float

    def delta(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        """Event counts accumulated since ``earlier``."""
        return CounterSnapshot(
            time=self.time - earlier.time,
            cycles=self.cycles - earlier.cycles,
            uops=self.uops - earlier.uops,
            l2_misses=self.l2_misses - earlier.l2_misses,
            memory_refs=self.memory_refs - earlier.memory_refs,
        )


class SimulatedPerformanceCounters:
    """Generates P4-style cumulative event counts for a simulated CPU.

    Event production scales with utilization: busy cycles accrue at the
    clock rate, micro-ops at a per-workload IPC, and memory traffic grows
    super-linearly (high utilization keeps more of the memory system
    active), mirroring why linear utilization models under-estimate
    mid-range power on real CPUs.
    """

    def __init__(
        self,
        frequency_hz: float = 2.4e9,
        uops_per_cycle: float = 1.1,
        seed: int = 17,
    ) -> None:
        if frequency_hz <= 0.0:
            raise ValueError("frequency must be positive")
        self.frequency_hz = frequency_hz
        self.uops_per_cycle = uops_per_cycle
        self._rng = random.Random(seed)
        self._time = 0.0
        self._cycles = 0.0
        self._uops = 0.0
        self._l2 = 0.0
        self._mem = 0.0

    def advance(self, utilization: float, dt: float) -> None:
        """Accumulate events for ``dt`` seconds at the given utilization."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        busy_cycles = utilization * self.frequency_hz * dt
        # Workload character wobble: IPC varies a few percent sample to
        # sample, so identical utilizations yield slightly different mixes.
        ipc = self.uops_per_cycle * (1.0 + self._rng.uniform(-0.04, 0.04))
        self._time += dt
        self._cycles += busy_cycles
        self._uops += busy_cycles * ipc
        # Memory activity grows quadratically with utilization.
        self._l2 += 0.004 * busy_cycles * utilization
        self._mem += 0.02 * busy_cycles * utilization

    def read(self) -> CounterSnapshot:
        """Read the cumulative counters."""
        return CounterSnapshot(
            time=self._time,
            cycles=self._cycles,
            uops=self._uops,
            l2_misses=self._l2,
            memory_refs=self._mem,
        )


class EnergyEstimator:
    """Weighted-event energy model: each event costs a fixed energy.

    ``energy = P_idle * dt + w_uop * uops + w_l2 * l2 + w_mem * mem``.

    The default weights are tuned for the simulated P4 so that the
    estimate reproduces the ground truth's power curve to within a couple
    of percent over the whole utilization range.
    """

    def __init__(
        self,
        idle_power: float,
        uop_nj: float = 6.0,
        l2_nj: float = 180.0,
        mem_nj: float = 30.0,
    ) -> None:
        self.idle_power = idle_power
        self.uop_nj = uop_nj
        self.l2_nj = l2_nj
        self.mem_nj = mem_nj

    def energy(self, delta: CounterSnapshot) -> float:
        """Estimated energy (J) consumed during the delta interval."""
        if delta.time < 0.0:
            raise ValueError("counter delta must be non-negative in time")
        nano = 1e-9
        return (
            self.idle_power * delta.time
            + self.uop_nj * nano * delta.uops
            + self.l2_nj * nano * delta.l2_misses
            + self.mem_nj * nano * delta.memory_refs
        )

    def average_power(self, delta: CounterSnapshot) -> float:
        """Average power (W) over the delta interval."""
        if delta.time <= 0.0:
            return self.idle_power
        return self.energy(delta) / delta.time


class CounterUtilizationReporter:
    """monitord's counter mode: counters -> energy -> power -> utilization.

    Wraps the counters and an estimator; every :meth:`sample` converts
    the interval's estimated average power into the linear "low-level
    utilization" the solver expects, so Mercury needs no modification.
    """

    def __init__(
        self,
        counters: SimulatedPerformanceCounters,
        estimator: EnergyEstimator,
        power_model: PowerModel,
    ) -> None:
        self._counters = counters
        self._estimator = estimator
        self._power_model = power_model
        self._last = counters.read()

    def sample(self) -> float:
        """Low-level utilization since the previous call."""
        current = self._counters.read()
        delta = current.delta(self._last)
        self._last = current
        power = self._estimator.average_power(delta)
        return self._power_model.utilization_for_power(power)


def calibrated_estimator(power_model: PowerModel,
                         counters: SimulatedPerformanceCounters,
                         power_linearity: float = 0.92) -> EnergyEstimator:
    """Fit event weights so estimated power matches a shaped power curve.

    Mirrors the offline microbenchmark fitting the paper describes: run
    the component through known utilizations, measure power, and fit the
    per-event energies.  Here the fit is closed-form.  With
    ``P(u) = Pbase + (beta u + (1-beta) u^2)(Pmax - Pbase)``, the linear
    part is carried by uops (rate ~ u) and the quadratic part by memory
    events (rate ~ u^2).
    """
    span = power_model.max_power - power_model.idle_power
    beta = power_linearity
    uop_rate = counters.frequency_hz * counters.uops_per_cycle  # events/s at u=1
    mem_rate = 0.02 * counters.frequency_hz  # events/s at u=1 (quadratic in u)
    l2_rate = 0.004 * counters.frequency_hz
    # Split the quadratic power between the two memory-ish event classes
    # in proportion to their default weights' contribution.
    quad_power = (1.0 - beta) * span
    l2_share = 0.4
    return EnergyEstimator(
        idle_power=power_model.idle_power,
        uop_nj=beta * span / uop_rate * 1e9,
        l2_nj=quad_power * l2_share / l2_rate * 1e9,
        mem_nj=quad_power * (1.0 - l2_share) / mem_rate * 1e9,
    )
