#!/usr/bin/env python3
"""Quickstart: emulate one server's temperatures with Mercury.

Builds the paper's Table 1 server, runs it through a simple load pattern,
and reads temperatures the same way an application would — through the
opensensor()/readsensor()/closesensor() API of Figure 3.

Run:  python examples/quickstart.py
"""

from repro import Solver, validation_machine
from repro.config import table1
from repro.sensors.api import closesensor, opensensor, readsensor
from repro.sensors.server import SensorService


def print_table1(layout):
    print("Table 1 constants (as loaded):")
    print(f"  inlet temperature: {layout.inlet_temperature} C")
    print(f"  fan speed:         {layout.fan_cfm} ft^3/min")
    for name, component in layout.components.items():
        model = component.power_model
        print(
            f"  {name:<14} mass={component.mass:<6} kg  "
            f"c={component.specific_heat:<6} J/(K kg)  "
            f"power={model.idle_power:g}..{model.max_power:g} W"
        )
    for edge in layout.heat_edges:
        print(f"  k[{edge.a} -- {edge.b}] = {edge.k} W/K")


def main():
    layout = validation_machine()
    print_table1(layout)

    solver = Solver([layout])
    service = SensorService(solver, aliases=table1.sensor_map())

    # Open sensors exactly like the paper's Figure 3 example.
    cpu_sd = opensensor(service, 8367, "cpu")
    disk_sd = opensensor(service, 8367, "disk")

    print("\nWarming up: 20 minutes at 80% CPU / 40% disk load...")
    solver.set_utilization("machine1", table1.CPU, 0.8)
    solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.4)
    for minute in range(0, 21, 5):
        print(
            f"  t={minute:>3} min  CPU={readsensor(cpu_sd):6.2f} C  "
            f"disk={readsensor(disk_sd):6.2f} C"
        )
        solver.run(300)

    print("Load removed: cooling for 20 minutes...")
    solver.set_utilization("machine1", table1.CPU, 0.0)
    solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.0)
    solver.run(1200)
    print(
        f"  final     CPU={readsensor(cpu_sd):6.2f} C  "
        f"disk={readsensor(disk_sd):6.2f} C"
    )

    closesensor(cpu_sd)
    closesensor(disk_sd)


if __name__ == "__main__":
    main()
