#!/usr/bin/env python3
"""Mercury as a replacement for slow CFD (the section 3.2 study).

Solves the 2-D server case with the fine-grained reference simulator (the
stand-in for Fluent), derives Mercury's lumped constants from it, and
compares steady-state temperatures at several power points — then shows
the speed gap that motivates Mercury in the first place.

Run:  python examples/fluent_comparison.py
"""

import time

from repro.reference.lumped import (
    calibrate_from_reference,
    comparison_table,
    lumped_case_layout,
    steady_temperatures,
)
from repro.reference.mesh import standard_case
from repro.reference.steady import solve_steady

POWER_POINTS = [(10.0, 8.0), (20.0, 10.0), (30.0, 12.0), (40.0, 14.0)]


def main():
    print("Calibrating Mercury's lumped model against the reference "
          "solver...")
    calibration = calibrate_from_reference()
    print(f"  fitted conductances (W/K): "
          f"{ {k: round(v, 2) for k, v in calibration.k_values.items()} }")
    print(f"  fitted air routing:        "
          f"{ {k: round(v, 2) for k, v in calibration.fractions.items()} }")

    print("\nSteady-state comparison (CPU power, disk power -> block temps):")
    rows = comparison_table(POWER_POINTS, calibration=calibration)
    print(f"{'cpu W':>6} {'disk W':>7} {'ref cpu':>9} {'mercury':>9} "
          f"{'err':>7}   {'ref disk':>9} {'mercury':>9} {'err':>7}")
    for row in rows:
        print(
            f"{row.cpu_power:>6.0f} {row.disk_power:>7.0f} "
            f"{row.reference_cpu:>9.2f} {row.mercury_cpu:>9.2f} "
            f"{row.cpu_error:>+7.3f}   {row.reference_disk:>9.2f} "
            f"{row.mercury_disk:>9.2f} {row.disk_error:>+7.3f}"
        )

    # The punchline: per-experiment cost of each tool.
    mesh = standard_case(cpu_power=25.0, disk_power=10.0)
    start = time.perf_counter()
    solve_steady(mesh)
    reference_time = time.perf_counter() - start

    layout = lumped_case_layout(
        calibration.k_values, fractions=calibration.fractions
    )
    start = time.perf_counter()
    steady_temperatures(layout, {"cpu": 25.0, "disk": 10.0, "psu": 40.0})
    mercury_time = time.perf_counter() - start

    print(
        f"\nreference solve: {reference_time * 1e3:7.1f} ms per steady state"
        f"\nmercury solve:   {mercury_time * 1e3:7.1f} ms per steady state"
        f"\n(and real CFD on real geometry takes hours to days — while "
        f"Mercury runs the whole software stack live)"
    )


if __name__ == "__main__":
    main()
