#!/usr/bin/env python3
"""The section 5 cluster study: Freon vs Freon-EC vs doing it the old way.

Four web servers behind an LVS-style balancer serve a diurnal trace
peaking at 70% utilization.  At t=480 s, fiddle breaks the cooling of
machines 1 and 3 (inlets to 38.6 C and 35.6 C) for the rest of the run.
Three managers face the same emergency:

* the traditional policy: shut a server down when a CPU red-lines;
* Freon: shift load away from hot servers via LVS weights and caps;
* Freon-EC: Freon plus energy-aware on/off reconfiguration.

Run:  python examples/freon_cluster.py
"""

from repro.cluster.simulation import ClusterSimulation, emergency_script


def describe(policy, result, machines):
    print(f"\n=== {policy} ===")
    print(f"  dropped requests: {result.drop_fraction * 100:.2f}%")
    peaks = {m: round(result.max_temperature(m), 1) for m in machines}
    print(f"  peak CPU temperatures: {peaks}")
    if result.adjustments:
        print("  weight adjustments:")
        for t, machine, output in result.adjustments:
            print(f"    t={t:>6.0f}s {machine} (controller output {output:.3f})")
    if result.releases:
        print(f"  restrictions released: {result.releases}")
    if result.shutdowns:
        for s in result.shutdowns:
            print(
                f"  SHUTDOWN t={s.time:.0f}s {s.machine} "
                f"({s.component} at {s.temperature:.1f} C)"
            )
    if result.ec_events:
        print("  reconfigurations:")
        for e in result.ec_events:
            print(f"    t={e.time:>6.0f}s {e.action:>3} {e.machine} ({e.reason})")
        active = result.active_series()
        low = min(active)
        print(f"  active servers ranged {low}..{max(active)}")


def main():
    script = emergency_script()
    print("Emergency script (fiddle):")
    print("  " + "\n  ".join(script.strip().splitlines()))

    for policy in ("traditional", "freon", "freon-ec"):
        sim = ClusterSimulation(policy=policy, fiddle_script=script)
        result = sim.run(2000)
        describe(policy, result, sim.machines)

    print(
        "\nShape check (paper section 5): the traditional policy loses "
        "servers and drops requests;\nFreon holds the hot CPUs just under "
        "the 67 C threshold and serves the whole trace;\nFreon-EC "
        "additionally powers the cluster down to one machine in the "
        "overnight valley."
    )


if __name__ == "__main__":
    main()
