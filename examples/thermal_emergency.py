#!/usr/bin/env python3
"""Thermal emergencies with fiddle, offline traces, and mdot graphs.

Demonstrates three more Mercury capabilities on one scenario:

1. the machine layout is round-tripped through the **mdot** language
   (and exported to graphviz dot for visualization);
2. a recorded utilization trace is **replicated** onto four machines to
   emulate a small cluster offline ("replicating these traces allows
   Mercury to emulate large cluster installations");
3. a Figure 4-style **fiddle script** breaks one machine's cooling
   mid-run and repairs it later — the repeatable-emergency experiment
   that would damage real hardware.

Run:  python examples/thermal_emergency.py
"""

from repro.config import table1
from repro.config.layouts import validation_cluster
from repro.core.trace import TracePoint, UtilizationTrace, run_offline
from repro.fiddle.script import events_from_script
from repro.mdot.loader import loads
from repro.mdot.writer import dumps, to_graphviz

EMERGENCY_SCRIPT = """#!/bin/bash
# An air conditioner serving machine2 fails 10 minutes in and the
# facilities team fixes it 40 minutes later.
sleep 600
fiddle machine2 temperature inlet 34
sleep 2400
fiddle machine2 restore
"""


def main():
    cluster = validation_cluster()

    # -- 1. the layouts as mdot text --------------------------------------
    source = dumps(list(cluster.machines.values()), cluster)
    machines, loaded_cluster = loads(source)
    print(
        f"mdot round-trip: {len(source.splitlines())} lines describing "
        f"{len(machines)} machines + 1 cluster block"
    )
    dot = to_graphviz(machines[0])
    print(f"graphviz export: {len(dot.splitlines())} lines "
          f"(render with `dot -Tpng`)\n")

    # -- 2. one recorded trace, replicated onto every machine -------------
    base_trace = UtilizationTrace(
        "recorded",
        [
            TracePoint(0.0, {table1.CPU: 0.30, table1.DISK_PLATTERS: 0.15}),
            TracePoint(900.0, {table1.CPU: 0.75, table1.DISK_PLATTERS: 0.35}),
            TracePoint(2700.0, {table1.CPU: 0.45, table1.DISK_PLATTERS: 0.20}),
        ],
    )
    traces = base_trace.replicate(list(loaded_cluster.machines))

    # -- 3. offline run with the scripted emergency -----------------------
    history = run_offline(
        machines,
        traces,
        cluster=loaded_cluster,
        duration=3600.0,
        events=events_from_script(EMERGENCY_SCRIPT),
    )

    print("CPU temperature (C) every 10 minutes:")
    times = history.times("machine1")
    header = ["t(min)"] + list(loaded_cluster.machines)
    print("  ".join(f"{h:>9}" for h in header))
    for minute in range(0, 61, 10):
        idx = times.index(float(minute * 60))
        row = [f"{minute:>9}"]
        for machine in loaded_cluster.machines:
            temp = history.samples(machine)[idx].temperatures[table1.CPU]
            row.append(f"{temp:>9.2f}")
        print("  ".join(row))

    hot_peak = max(history.series("machine2", table1.CPU))
    normal_peak = max(history.series("machine1", table1.CPU))
    print(
        f"\nmachine2 peaked {hot_peak - normal_peak:.1f} C above its "
        f"identical siblings during the emergency, then recovered — a "
        f"repeatable experiment no real machine room would enjoy."
    )


if __name__ == "__main__":
    main()
