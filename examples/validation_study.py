#!/usr/bin/env python3
"""The section 3.1 validation study, condensed.

1. Run CPU and disk calibration microbenchmarks on the simulated
   physical server and record what its (imperfect) sensors report.
2. Fit Mercury's heat-transfer constants to those recordings.
3. Validate on the "challenging" mixed benchmark without touching the
   inputs, and report the tracking error (the paper's claim: <= 1 C).

Durations are trimmed so the whole study runs in ~15 seconds; the
benchmark suite (benchmarks/test_fig5...fig8) runs the full-length
version.

Run:  python examples/validation_study.py
"""

import numpy as np

from repro import validation_machine
from repro.config import table1
from repro.core.calibration import (
    calibrate,
    emulate,
    measure_run,
    smooth_series,
)
from repro.machine.server import SimulatedServer
from repro.machine.workloads import (
    MixedBenchmark,
    cpu_microbenchmark,
    disk_microbenchmark,
)

SEED = 11  # the one physical machine under test


def main():
    layout = validation_machine()

    print("Step 1: calibration microbenchmarks on the physical machine...")
    cpu_server = SimulatedServer(
        layout,
        workload=cpu_microbenchmark(
            levels=(0.3, 0.7, 1.0), busy_length=900.0, idle_length=500.0
        ),
        seed=SEED,
    )
    cpu_run = measure_run(cpu_server, duration=4200.0, interval=1.0)
    disk_server = SimulatedServer(
        layout,
        workload=disk_microbenchmark(
            levels=(0.4, 0.8, 1.0), busy_length=900.0, idle_length=500.0
        ),
        seed=SEED,
    )
    disk_run = measure_run(disk_server, duration=4200.0, interval=1.0)

    print("Step 2: fitting Mercury's constants to the recordings...")
    fit = calibrate(layout, [cpu_run, disk_run], dt=5.0)
    print(fit.describe())

    print("\nStep 3: validation on the mixed benchmark (no re-tuning)...")
    mixed_server = SimulatedServer(
        layout, workload=MixedBenchmark(duration=3000.0), seed=SEED
    )
    mixed_run = measure_run(mixed_server, duration=3000.0, interval=1.0)
    emulated = emulate(layout, mixed_run, k_overrides=fit.k_overrides, dt=1.0)

    warmup = 120
    for node, label in (
        (table1.CPU_AIR, "CPU air"),
        (table1.DISK_PLATTERS, "disk"),
    ):
        smoothed = np.asarray(
            smooth_series(mixed_run.temperatures[node])[warmup:]
        )
        series = np.asarray(emulated[node][warmup:])
        err = np.abs(smoothed - series)
        verdict = "OK" if err.max() < 1.0 else "MISS"
        print(
            f"  {label:<8} rmse={np.sqrt((err**2).mean()):.3f} C  "
            f"max={err.max():.3f} C  (paper claim: <= 1 C)  [{verdict}]"
        )


if __name__ == "__main__":
    main()
