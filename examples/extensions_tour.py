#!/usr/bin/env python3
"""Tour of the section 7 / section 4.3 extensions.

The paper's "limitations and future work" sketches four directions this
reproduction implements; this example exercises each:

1. **variable-speed fans** — a firmware-style fan controller closing the
   loop on CPU temperature;
2. **clock throttling / DVFS** — a per-CPU P-state governor managing its
   own temperature;
3. **chip multiprocessors** — two-level (core + package) emulation;
4. **content-aware two-stage management** — steering only CPU-bound
   requests away from a hot server before touching its whole load.

Run:  python examples/extensions_tour.py
"""

from repro.cluster.content_aware import (
    DYNAMIC,
    STATIC,
    ContentAwareBalancer,
    TwoStageFreon,
    classed_load,
)
from repro.config import table1
from repro.config.cmp import cmp_machine, core_name, set_core_utilizations
from repro.config.layouts import validation_machine
from repro.core.fans import DEFAULT_SERVER_CURVE, FanController
from repro.core.solver import Solver
from repro.freon.local import DvfsGovernor


def fan_demo():
    print("1. Variable-speed fan: full CPU load, fan curve 23..50 cfm")
    solver = Solver([validation_machine()], record=False)
    solver.set_utilization("machine1", table1.CPU, 1.0)
    controller = FanController(solver, "machine1", table1.CPU)
    solver.machine("machine1").set_fan_cfm(DEFAULT_SERVER_CURVE.min_speed)
    for _ in range(4000):
        solver.step()
        controller.tick(1.0)
    print(
        f"   settled: CPU={solver.temperature('machine1', table1.CPU):.1f} C "
        f"at fan={controller.current_cfm:.1f} cfm "
        f"({len(controller.events)} speed changes)\n"
    )


def dvfs_demo():
    print("2. DVFS governor: hot inlet, CPU manages itself")
    solver = Solver([validation_machine()], record=False)
    solver.force_temperature("machine1", "inlet", 38.6)
    solver.set_utilization("machine1", table1.CPU, 0.9)
    governor = DvfsGovernor(
        read_temperature=lambda: solver.temperature("machine1", table1.CPU),
        apply=lambda f, p: solver.machine("machine1").set_power_scale(
            table1.CPU, p
        ),
    )
    for _ in range(3000):
        solver.step()
        governor.tick(1.0)
    print(
        f"   settled: CPU={solver.temperature('machine1', table1.CPU):.1f} C "
        f"in P-state {governor.index} "
        f"(f={governor.frequency_ratio:.2f}, P={governor.power_ratio:.2f}); "
        f"{len(governor.changes)} transitions\n"
    )


def cmp_demo():
    print("3. Chip multiprocessor: one busy core out of four")
    layout = cmp_machine(cores=4)
    solver = Solver([layout], record=False)
    set_core_utilizations(solver, "machine1", [1.0, 0.0, 0.0, 0.0])
    solver.run(4000)
    temps = [solver.temperature("machine1", core_name(i)) for i in range(4)]
    package = solver.temperature("machine1", "CPU Package")
    print(
        f"   cores: {[f'{t:.1f}' for t in temps]} C, "
        f"package: {package:.1f} C "
        f"(busy core runs {temps[0] - temps[1]:.1f} C above its siblings)\n"
    )


def two_stage_demo():
    print("4. Two-stage content-aware policy: m1's CPU overheats")
    balancer = ContentAwareBalancer(["m1", "m2", "m3", "m4"])
    policy = TwoStageFreon(balancer)
    offered = {DYNAMIC: 96.0, STATIC: 224.0}
    capacity = {s: 400.0 for s in balancer.servers}

    def report(tag):
        rates, _ = balancer.allocate(offered, capacity)
        load = classed_load(rates["m1"][DYNAMIC], rates["m1"][STATIC])
        print(
            f"   {tag}: m1 cpu={load.cpu_utilization:.2f} "
            f"disk={load.disk_utilization:.2f} "
            f"(dyn {rates['m1'][DYNAMIC]:.1f}/s, "
            f"stat {rates['m1'][STATIC]:.1f}/s)"
        )

    report("before")
    policy.observe("m1", 70.0, now=60.0)
    policy.observe("m1", 70.0, now=120.0)
    report("after 2 stage-1 actions")
    print(
        f"   events: {[(e.stage, e.action) for e in policy.events]}\n"
        "   CPU-heavy work drained away; static throughput untouched."
    )


def main():
    fan_demo()
    dvfs_demo()
    cmp_demo()
    two_stage_demo()


if __name__ == "__main__":
    main()
