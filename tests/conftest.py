"""Shared fixtures for the test suite."""

import pytest

from repro.config.layouts import validation_cluster, validation_machine
from repro.core.graph import (
    AirEdge,
    AirRegion,
    Component,
    HeatEdge,
    MachineLayout,
)
from repro.core.power import ConstantPowerModel, LinearPowerModel
from repro.core.solver import Solver


@pytest.fixture
def layout():
    """The paper's Table 1 validation server."""
    return validation_machine()


@pytest.fixture
def cluster():
    """The paper's Figure 1(c) four-machine cluster."""
    return validation_cluster()


@pytest.fixture
def solver(layout):
    """A fresh single-machine solver on the validation layout."""
    return Solver([layout])


def make_tiny_layout(name="tiny", k=1.0, inlet_temperature=20.0, fan_cfm=10.0):
    """A minimal layout: one heated box in a straight air stream.

    Used by tests that need analytically checkable behaviour.
    """
    return MachineLayout(
        name=name,
        components=[
            Component(
                name="box",
                mass=0.5,
                specific_heat=900.0,
                power_model=LinearPowerModel(2.0, 12.0),
                monitored=True,
            )
        ],
        air_regions=[AirRegion("in"), AirRegion("mid"), AirRegion("out")],
        heat_edges=[HeatEdge("box", "mid", k)],
        air_edges=[
            AirEdge("in", "mid", 1.0),
            AirEdge("mid", "out", 1.0),
        ],
        inlet="in",
        exhaust="out",
        inlet_temperature=inlet_temperature,
        fan_cfm=fan_cfm,
    )


@pytest.fixture
def tiny_layout():
    """One heated box in a straight air stream."""
    return make_tiny_layout()
