"""Tests for the solver-side sensor service (in-process and UDP faces)."""

import math
import socket

import pytest

from repro.config import table1
from repro.core.solver import Solver
from repro.errors import SensorError
from repro.sensors import protocol
from repro.sensors.server import SensorService, UdpSensorServer


@pytest.fixture
def service(layout):
    solver = Solver([layout], record=False)
    return SensorService(solver, aliases=table1.sensor_map())


class TestInProcessFace:
    def test_read_temperature(self, service):
        temp = service.read_temperature("machine1", table1.CPU)
        assert temp == pytest.approx(table1.INLET_TEMPERATURE)
        assert service.queries_served == 1

    def test_alias_resolution(self, service):
        direct = service.read_temperature("machine1", table1.DISK_PLATTERS)
        aliased = service.read_temperature("machine1", "disk")
        assert direct == aliased

    def test_apply_utilizations(self, service):
        service.apply_utilizations("machine1", {table1.CPU: 0.9})
        state = service.solver.machine("machine1")
        assert state.utilizations[table1.CPU] == 0.9
        assert service.updates_applied == 1

    def test_step_advances_solver(self, service):
        service.step(5)
        assert service.solver.iterations == 5


class TestDatagramFace:
    def test_query_reply_cycle(self, service):
        query = protocol.SensorQuery(11, "machine1", "cpu")
        reply = protocol.SensorReply.decode(service.handle_query(query.encode()))
        assert reply.request_id == 11
        assert reply.status == protocol.STATUS_OK
        assert reply.temperature == pytest.approx(table1.INLET_TEMPERATURE)

    def test_unknown_sensor_status(self, service):
        query = protocol.SensorQuery(1, "machine1", "nonexistent")
        reply = protocol.SensorReply.decode(service.handle_query(query.encode()))
        assert reply.status == protocol.STATUS_UNKNOWN_SENSOR
        assert math.isnan(reply.temperature)
        assert service.errors == 1

    def test_malformed_query_raises(self, service):
        with pytest.raises(SensorError):
            service.handle_query(b"garbage")

    def test_update_datagram_applies(self, service):
        update = protocol.UtilizationUpdate("machine1", {table1.CPU: 0.4})
        service.handle_update(update.encode())
        state = service.solver.machine("machine1")
        assert state.utilizations[table1.CPU] == pytest.approx(0.4)


class TestUdpServer:
    def test_query_over_real_socket(self, service):
        with UdpSensorServer(service) as server:
            host, port = server.address
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.settimeout(2.0)
            try:
                query = protocol.SensorQuery(5, "machine1", "disk")
                sock.sendto(query.encode(), (host, port))
                data, _ = sock.recvfrom(2048)
            finally:
                sock.close()
        reply = protocol.SensorReply.decode(data)
        assert reply.request_id == 5
        assert reply.status == protocol.STATUS_OK

    def test_update_over_real_socket(self, service):
        with UdpSensorServer(service) as server:
            host, port = server.address
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                update = protocol.UtilizationUpdate(
                    "machine1", {table1.CPU: 0.8}
                )
                sock.sendto(update.encode(), (host, port))
                # UDP updates are fire-and-forget; poll the service state.
                import time

                for _ in range(100):
                    state = service.solver.machine("machine1")
                    if state.utilizations[table1.CPU] == pytest.approx(0.8):
                        break
                    time.sleep(0.01)
            finally:
                sock.close()
        assert service.solver.machine("machine1").utilizations[
            table1.CPU
        ] == pytest.approx(0.8)

    def test_garbage_datagram_ignored(self, service):
        with UdpSensorServer(service) as server:
            host, port = server.address
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.settimeout(0.3)
            try:
                sock.sendto(b"not-a-protocol-message", (host, port))
                # A valid query afterwards still works.
                query = protocol.SensorQuery(9, "machine1", "cpu")
                sock.sendto(query.encode(), (host, port))
                data, _ = sock.recvfrom(2048)
            finally:
                sock.close()
        assert protocol.SensorReply.decode(data).request_id == 9

    def test_double_start_rejected(self, service):
        server = UdpSensorServer(service)
        server.start()
        try:
            with pytest.raises(SensorError):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self, service):
        server = UdpSensorServer(service).start()
        server.stop()
        server.stop()  # no error

    def test_start_close_close_under_traffic(self, service):
        # Close while the worker thread sits in its recv loop, twice.
        server = UdpSensorServer(service).start()
        host, port = server.address
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(2.0)
        try:
            query = protocol.SensorQuery(7, "machine1", "cpu")
            sock.sendto(query.encode(), (host, port))
            sock.recvfrom(2048)
        finally:
            sock.close()
        server.stop()
        server.stop()
        assert server._server.socket.fileno() == -1

    def test_stop_without_start_releases_socket(self, service):
        server = UdpSensorServer(service)
        server.stop()
        assert server._server.socket.fileno() == -1
        server.stop()  # still idempotent

    def test_start_after_stop_rejected(self, service):
        server = UdpSensorServer(service).start()
        server.stop()
        with pytest.raises(SensorError):
            server.start()

    def test_stop_closes_socket_even_if_shutdown_raises(self, service):
        server = UdpSensorServer(service).start()
        original_shutdown = server._server.shutdown

        def exploding_shutdown():
            original_shutdown()
            raise OSError("simulated shutdown failure")

        server._server.shutdown = exploding_shutdown
        with pytest.raises(OSError):
            server.stop()
        assert server._server.socket.fileno() == -1
        server.stop()  # second close after a failed one is a no-op

    def test_in_process_face_survives_udp_teardown(self, service):
        # The in-process transport keeps serving after the UDP face closes.
        server = UdpSensorServer(service).start()
        server.stop()
        server.stop()
        query = protocol.SensorQuery(3, "machine1", "cpu")
        reply = protocol.SensorReply.decode(service.handle_query(query.encode()))
        assert reply.status == protocol.STATUS_OK
