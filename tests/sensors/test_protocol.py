"""Tests for the UDP wire formats."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import SensorError
from repro.sensors import protocol

names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126, exclude_characters='"'),
    min_size=1,
    max_size=18,
)


class TestUtilizationUpdate:
    def test_round_trip(self):
        update = protocol.UtilizationUpdate(
            machine="machine1",
            utilizations={"CPU": 0.5, "Disk Platters": 0.25},
        )
        decoded = protocol.UtilizationUpdate.decode(update.encode())
        assert decoded.machine == "machine1"
        assert decoded.utilizations["CPU"] == pytest.approx(0.5)
        assert decoded.utilizations["Disk Platters"] == pytest.approx(0.25)

    def test_is_exactly_128_bytes(self):
        # The paper: "Our current implementation uses 128-byte UDP
        # messages to update the solver."
        update = protocol.UtilizationUpdate("m", {"CPU": 1.0})
        assert len(update.encode()) == 128
        assert protocol.UPDATE_SIZE == 128

    def test_empty_update(self):
        decoded = protocol.UtilizationUpdate.decode(
            protocol.UtilizationUpdate("m", {}).encode()
        )
        assert decoded.utilizations == {}

    def test_max_components(self):
        utils = {f"c{i}": i / 10 for i in range(protocol.MAX_UPDATE_COMPONENTS)}
        decoded = protocol.UtilizationUpdate.decode(
            protocol.UtilizationUpdate("m", utils).encode()
        )
        assert len(decoded.utilizations) == protocol.MAX_UPDATE_COMPONENTS

    def test_too_many_components_rejected(self):
        utils = {f"c{i}": 0.1 for i in range(protocol.MAX_UPDATE_COMPONENTS + 1)}
        with pytest.raises(SensorError):
            protocol.UtilizationUpdate("m", utils).encode()

    def test_out_of_range_utilization_rejected(self):
        with pytest.raises(SensorError):
            protocol.UtilizationUpdate("m", {"CPU": 1.5}).encode()

    def test_bad_size_rejected(self):
        with pytest.raises(SensorError):
            protocol.UtilizationUpdate.decode(b"x" * 100)

    def test_bad_magic_rejected(self):
        data = bytearray(protocol.UtilizationUpdate("m", {}).encode())
        data[:4] = b"XXXX"
        with pytest.raises(SensorError):
            protocol.UtilizationUpdate.decode(bytes(data))

    def test_bad_version_rejected(self):
        data = bytearray(protocol.UtilizationUpdate("m", {}).encode())
        data[4] = 99
        with pytest.raises(SensorError):
            protocol.UtilizationUpdate.decode(bytes(data))

    def test_bad_count_rejected(self):
        data = bytearray(protocol.UtilizationUpdate("m", {}).encode())
        data[29] = 200  # count byte after 4s B 24s
        with pytest.raises(SensorError):
            protocol.UtilizationUpdate.decode(bytes(data))

    def test_long_names_truncate_silently(self):
        update = protocol.UtilizationUpdate(
            "a-very-long-machine-name-that-exceeds-24-bytes", {"CPU": 0.5}
        )
        decoded = protocol.UtilizationUpdate.decode(update.encode())
        assert len(decoded.machine.encode()) <= 24

    @given(
        machine=names,
        utils=st.dictionaries(
            names, st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=4,
        ),
    )
    def test_round_trip_property(self, machine, utils):
        update = protocol.UtilizationUpdate(machine, utils)
        decoded = protocol.UtilizationUpdate.decode(update.encode())
        assert decoded.machine == machine
        for name, value in utils.items():
            assert decoded.utilizations[name] == pytest.approx(value, abs=1e-6)


class TestSensorQuery:
    def test_round_trip(self):
        query = protocol.SensorQuery(7, "machine2", "disk")
        decoded = protocol.SensorQuery.decode(query.encode())
        assert decoded == protocol.SensorQuery(7, "machine2", "disk")

    def test_request_id_wraps(self):
        query = protocol.SensorQuery(2**40, "m", "c")
        decoded = protocol.SensorQuery.decode(query.encode())
        assert decoded.request_id == 2**40 % 2**32

    def test_bad_size(self):
        with pytest.raises(SensorError):
            protocol.SensorQuery.decode(b"")

    def test_bad_magic(self):
        data = bytearray(protocol.SensorQuery(1, "m", "c").encode())
        data[:4] = b"NOPE"
        with pytest.raises(SensorError):
            protocol.SensorQuery.decode(bytes(data))


class TestSensorReply:
    def test_round_trip(self):
        reply = protocol.SensorReply(3, protocol.STATUS_OK, 42.5)
        decoded = protocol.SensorReply.decode(reply.encode())
        assert decoded.request_id == 3
        assert decoded.status == protocol.STATUS_OK
        assert decoded.temperature == pytest.approx(42.5)

    def test_nan_temperature_survives(self):
        reply = protocol.SensorReply(1, protocol.STATUS_UNKNOWN_SENSOR, float("nan"))
        decoded = protocol.SensorReply.decode(reply.encode())
        assert math.isnan(decoded.temperature)

    def test_bad_size(self):
        with pytest.raises(SensorError):
            protocol.SensorReply.decode(b"abc")

    def test_query_and_reply_sizes_differ_from_update(self):
        # The server dispatches on datagram size; the three formats must
        # be mutually distinguishable.
        sizes = {protocol.UPDATE_SIZE, protocol.QUERY_SIZE, protocol.REPLY_SIZE}
        assert len(sizes) == 3
