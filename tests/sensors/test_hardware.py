"""Tests for the simulated physical sensors."""

import statistics

import pytest

from repro.sensors.hardware import (
    DIGITAL_THERMOMETER,
    IN_DISK_SENSOR,
    MOTHERBOARD_SENSOR,
    PhysicalSensor,
    SensorSpec,
)


def constant_source(value):
    return lambda: value


class TestPhysicalSensor:
    def test_quantizes_to_resolution(self):
        sensor = PhysicalSensor(
            constant_source(25.3), resolution=1.0, accuracy=0.0, noise_std=0.0
        )
        assert sensor.read() == 25.0

    def test_noise_free_biasless_sensor_is_exact_mod_resolution(self):
        sensor = PhysicalSensor(
            constant_source(30.05), resolution=0.1, accuracy=0.0, noise_std=0.0
        )
        # Quantization error is at most half the resolution.
        assert sensor.read() == pytest.approx(30.05, abs=0.051)

    def test_bias_is_fixed_per_sensor(self):
        sensor = PhysicalSensor(
            constant_source(25.0), resolution=0.001, accuracy=2.0,
            noise_std=0.0, seed=42,
        )
        readings = {sensor.read() for _ in range(10)}
        assert len(readings) == 1  # no noise, bias constant

    def test_bias_bounded_by_accuracy(self):
        for seed in range(50):
            sensor = PhysicalSensor(
                constant_source(0.0), resolution=0.01, accuracy=1.5, seed=seed
            )
            assert abs(sensor.bias) <= 1.5

    def test_noise_statistics(self):
        sensor = PhysicalSensor(
            constant_source(25.0), resolution=0.001, accuracy=0.0,
            noise_std=0.2, seed=7,
        )
        readings = [sensor.read() for _ in range(2000)]
        assert statistics.mean(readings) == pytest.approx(25.0, abs=0.05)
        assert statistics.stdev(readings) == pytest.approx(0.2, abs=0.05)

    def test_different_seeds_differ(self):
        a = PhysicalSensor(constant_source(25.0), accuracy=1.5, seed=1)
        b = PhysicalSensor(constant_source(25.0), accuracy=1.5, seed=2)
        assert a.bias != b.bias

    def test_tracks_a_moving_source(self):
        value = {"t": 20.0}
        sensor = PhysicalSensor(
            lambda: value["t"], resolution=0.1, accuracy=0.0, noise_std=0.0
        )
        first = sensor.read()
        value["t"] = 40.0
        assert sensor.read() - first == pytest.approx(20.0, abs=0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"resolution": 0.0},
            {"resolution": -1.0},
            {"accuracy": -1.0},
            {"noise_std": -0.1},
            {"latency": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            PhysicalSensor(constant_source(0.0), **kwargs)


class TestSensorSpecs:
    def test_paper_accuracy_figures(self):
        # The paper quotes 1.5 C digital thermometers and 3 C in-disk
        # sensors, with the disk sensor at ~500 us access time.
        assert DIGITAL_THERMOMETER.accuracy == 1.5
        assert IN_DISK_SENSOR.accuracy == 3.0
        assert IN_DISK_SENSOR.latency == pytest.approx(500e-6)

    def test_attach_builds_sensor(self):
        sensor = MOTHERBOARD_SENSOR.attach(constant_source(30.0), seed=3)
        assert isinstance(sensor, PhysicalSensor)
        assert sensor.resolution == MOTHERBOARD_SENSOR.resolution

    def test_disk_sensor_is_coarser_than_thermometer(self):
        assert IN_DISK_SENSOR.resolution > DIGITAL_THERMOMETER.resolution
