"""Tests for the opensensor/readsensor/closesensor client library."""

import pytest

from repro.config import table1
from repro.core.solver import Solver
from repro.errors import SensorClosedError, SensorError
from repro.faults.backoff import BackoffPolicy
from repro.sensors.api import (
    SensorConnection,
    closesensor,
    open_sensor_count,
    opensensor,
    readsensor,
)
from repro.sensors.server import SensorService, UdpSensorServer


@pytest.fixture
def service(layout):
    solver = Solver([layout], record=False)
    return SensorService(solver, aliases=table1.sensor_map())


class TestInProcessTransport:
    def test_figure3_example(self, service):
        # The paper's Figure 3, minus the C syntax.
        sd = opensensor(service, 8367, "disk")
        temp = readsensor(sd)
        closesensor(sd)
        assert temp == pytest.approx(table1.INLET_TEMPERATURE)

    def test_read_tracks_solver(self, service):
        sd = opensensor(service, 0, "cpu")
        before = readsensor(sd)
        service.apply_utilizations("machine1", {table1.CPU: 1.0})
        service.step(2000)
        after = readsensor(sd)
        closesensor(sd)
        assert after > before + 20.0

    def test_descriptors_are_distinct(self, service):
        a = opensensor(service, 0, "cpu")
        b = opensensor(service, 0, "disk")
        assert a != b
        closesensor(a)
        closesensor(b)

    def test_read_after_close_raises(self, service):
        sd = opensensor(service, 0, "cpu")
        closesensor(sd)
        with pytest.raises(SensorClosedError):
            readsensor(sd)

    def test_double_close_raises(self, service):
        sd = opensensor(service, 0, "cpu")
        closesensor(sd)
        with pytest.raises(SensorClosedError):
            closesensor(sd)

    def test_unknown_component_raises_on_read(self, service):
        from repro.errors import UnknownSensorError

        sd = opensensor(service, 0, "warp core")
        try:
            with pytest.raises(UnknownSensorError):
                readsensor(sd)
        finally:
            closesensor(sd)

    def test_machine_parameter(self, cluster):
        solver = Solver(list(cluster.machines.values()), cluster=cluster,
                        record=False)
        service = SensorService(solver, aliases=table1.sensor_map())
        solver.set_utilization("machine3", table1.CPU, 1.0)
        solver.run(2000)
        sd_hot = opensensor(service, 0, "cpu", machine="machine3")
        sd_cool = opensensor(service, 0, "cpu", machine="machine2")
        try:
            assert readsensor(sd_hot) > readsensor(sd_cool) + 10.0
        finally:
            closesensor(sd_hot)
            closesensor(sd_cool)

    def test_no_descriptor_leaks(self, service):
        baseline = open_sensor_count()
        descriptors = [opensensor(service, 0, "cpu") for _ in range(10)]
        assert open_sensor_count() == baseline + 10
        for sd in descriptors:
            closesensor(sd)
        assert open_sensor_count() == baseline


class TestSensorConnection:
    def test_context_manager(self, service):
        with SensorConnection(service, component="disk") as sensor:
            assert sensor.read() == pytest.approx(table1.INLET_TEMPERATURE)

    def test_close_is_idempotent(self, service):
        conn = SensorConnection(service, component="cpu")
        conn.close()
        conn.close()

    def test_read_after_close(self, service):
        conn = SensorConnection(service, component="cpu")
        conn.close()
        with pytest.raises(SensorClosedError):
            conn.read()

    def test_descriptor_released(self, service):
        baseline = open_sensor_count()
        with SensorConnection(service, component="cpu"):
            assert open_sensor_count() == baseline + 1
        assert open_sensor_count() == baseline


class TestUdpTransport:
    def test_read_over_udp(self, service):
        with UdpSensorServer(service) as server:
            host, port = server.address
            sd = opensensor(host, port, "disk")
            try:
                temp = readsensor(sd)
            finally:
                closesensor(sd)
        assert temp == pytest.approx(table1.INLET_TEMPERATURE)

    def test_unknown_component_over_udp(self, service):
        with UdpSensorServer(service) as server:
            host, port = server.address
            sd = opensensor(host, port, "warp core")
            try:
                with pytest.raises(SensorError):
                    readsensor(sd)
            finally:
                closesensor(sd)

    def test_no_server_times_out(self):
        # Port 1 on localhost: nothing is listening there.
        fast = BackoffPolicy(attempts=2, base_timeout=0.05, multiplier=1.0)
        sd = opensensor("127.0.0.1", 1, "cpu", policy=fast)
        try:
            with pytest.raises(SensorError):
                readsensor(sd)
        finally:
            closesensor(sd)

    def test_retry_exhaustion_reports_attempt_count(self):
        fast = BackoffPolicy(attempts=2, base_timeout=0.05, multiplier=1.0)
        sd = opensensor("127.0.0.1", 1, "cpu", policy=fast)
        try:
            with pytest.raises(SensorError, match="2 attempts"):
                readsensor(sd)
        finally:
            closesensor(sd)

    def test_custom_policy_reaches_connection_wrapper(self):
        fast = BackoffPolicy(attempts=1, base_timeout=0.05)
        with pytest.raises(SensorError, match="1 attempts"):
            with SensorConnection(
                "127.0.0.1", 1, component="cpu", policy=fast
            ) as sensor:
                sensor.read()

    def test_repeated_reads(self, service):
        with UdpSensorServer(service) as server:
            host, port = server.address
            with SensorConnection(host, port, component="cpu") as sensor:
                readings = [sensor.read() for _ in range(5)]
        assert all(r == pytest.approx(readings[0]) for r in readings)
