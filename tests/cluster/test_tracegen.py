"""Tests for the synthetic diurnal traffic trace."""

import pytest

from repro.cluster.tracegen import (
    RequestTrace,
    TracePoint,
    constant_trace,
    diurnal_trace,
    peak_rate_for_utilization,
)
from repro.cluster.webserver import RequestMix


class TestRequestTrace:
    def test_step_semantics(self):
        trace = RequestTrace(
            [TracePoint(0.0, 10.0), TracePoint(100.0, 20.0)]
        )
        assert trace.rate_at(-5.0) == 0.0
        assert trace.rate_at(0.0) == 10.0
        assert trace.rate_at(99.0) == 10.0
        assert trace.rate_at(100.0) == 20.0

    def test_requires_points(self):
        with pytest.raises(ValueError):
            RequestTrace([])

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            RequestTrace([TracePoint(5.0, 1.0), TracePoint(1.0, 1.0)])

    def test_total_requests_integrates(self):
        trace = RequestTrace(
            [TracePoint(0.0, 10.0), TracePoint(100.0, 0.0), TracePoint(200.0, 0.0)]
        )
        assert trace.total_requests() == pytest.approx(1000.0)


class TestPeakRate:
    def test_matches_mix_demand(self):
        mix = RequestMix()
        rate = peak_rate_for_utilization(0.7, 4, mix)
        # Feeding that rate to 4 servers puts each at 70% CPU.
        per_server = rate / 4
        assert per_server * mix.cpu_demand == pytest.approx(0.7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            peak_rate_for_utilization(0.0, 4)
        with pytest.raises(ValueError):
            peak_rate_for_utilization(0.5, 0)


class TestDiurnalTrace:
    def test_deterministic(self):
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=3)
        assert [p.rate for p in a._points] == [p.rate for p in b._points]

    def test_seed_changes_jitter(self):
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=4)
        assert [p.rate for p in a._points] != [p.rate for p in b._points]

    def test_peak_rate_near_target(self):
        trace = diurnal_trace(peak_utilization=0.7, servers=4, jitter=0.0)
        expected = peak_rate_for_utilization(0.7, 4)
        assert trace.peak_rate == pytest.approx(expected, rel=0.02)

    def test_valley_to_peak_shape(self):
        trace = diurnal_trace(jitter=0.0, valley_fraction=0.15)
        start = trace.rate_at(0.0)
        peak = trace.rate_at(0.6 * trace.duration)
        end = trace.rate_at(trace.duration - 10.0)
        assert start < 0.3 * peak
        assert end < 0.7 * peak

    def test_plateau_widens_peak(self):
        narrow = diurnal_trace(jitter=0.0, plateau=1.0)
        wide = diurnal_trace(jitter=0.0, plateau=0.6)
        threshold = 0.95 * narrow.peak_rate
        def width(trace):
            return sum(
                10.0 for t in range(0, 2000, 10)
                if trace.rate_at(float(t)) >= threshold
            )
        assert width(wide) > width(narrow) * 1.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            diurnal_trace(duration=0.0)
        with pytest.raises(ValueError):
            diurnal_trace(plateau=0.0)

    def test_rates_never_negative(self):
        trace = diurnal_trace(jitter=0.3, seed=9)
        assert all(p.rate >= 0.0 for p in trace._points)


class TestConstantTrace:
    def test_flat(self):
        trace = constant_trace(50.0, 100.0)
        assert trace.rate_at(0.0) == 50.0
        assert trace.rate_at(95.0) == 50.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            constant_trace(-1.0, 100.0)
