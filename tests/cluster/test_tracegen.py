"""Tests for the synthetic diurnal traffic trace."""

import pytest

from repro.cluster.tracegen import (
    RequestTrace,
    TracePoint,
    constant_trace,
    diurnal_trace,
    peak_rate_for_utilization,
    phase_offsets,
)
from repro.cluster.webserver import RequestMix


class TestRequestTrace:
    def test_step_semantics(self):
        trace = RequestTrace(
            [TracePoint(0.0, 10.0), TracePoint(100.0, 20.0)]
        )
        assert trace.rate_at(-5.0) == 0.0
        assert trace.rate_at(0.0) == 10.0
        assert trace.rate_at(99.0) == 10.0
        assert trace.rate_at(100.0) == 20.0

    def test_requires_points(self):
        with pytest.raises(ValueError):
            RequestTrace([])

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            RequestTrace([TracePoint(5.0, 1.0), TracePoint(1.0, 1.0)])

    def test_total_requests_integrates(self):
        trace = RequestTrace(
            [TracePoint(0.0, 10.0), TracePoint(100.0, 0.0), TracePoint(200.0, 0.0)]
        )
        assert trace.total_requests() == pytest.approx(1000.0)


class TestPeakRate:
    def test_matches_mix_demand(self):
        mix = RequestMix()
        rate = peak_rate_for_utilization(0.7, 4, mix)
        # Feeding that rate to 4 servers puts each at 70% CPU.
        per_server = rate / 4
        assert per_server * mix.cpu_demand == pytest.approx(0.7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            peak_rate_for_utilization(0.0, 4)
        with pytest.raises(ValueError):
            peak_rate_for_utilization(0.5, 0)


class TestDiurnalTrace:
    def test_deterministic(self):
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=3)
        assert [p.rate for p in a._points] == [p.rate for p in b._points]

    def test_seed_changes_jitter(self):
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=4)
        assert [p.rate for p in a._points] != [p.rate for p in b._points]

    def test_peak_rate_near_target(self):
        trace = diurnal_trace(peak_utilization=0.7, servers=4, jitter=0.0)
        expected = peak_rate_for_utilization(0.7, 4)
        assert trace.peak_rate == pytest.approx(expected, rel=0.02)

    def test_valley_to_peak_shape(self):
        trace = diurnal_trace(jitter=0.0, valley_fraction=0.15)
        start = trace.rate_at(0.0)
        peak = trace.rate_at(0.6 * trace.duration)
        end = trace.rate_at(trace.duration - 10.0)
        assert start < 0.3 * peak
        assert end < 0.7 * peak

    def test_plateau_widens_peak(self):
        narrow = diurnal_trace(jitter=0.0, plateau=1.0)
        wide = diurnal_trace(jitter=0.0, plateau=0.6)
        threshold = 0.95 * narrow.peak_rate
        def width(trace):
            return sum(
                10.0 for t in range(0, 2000, 10)
                if trace.rate_at(float(t)) >= threshold
            )
        assert width(wide) > width(narrow) * 1.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            diurnal_trace(duration=0.0)
        with pytest.raises(ValueError):
            diurnal_trace(plateau=0.0)

    def test_rates_never_negative(self):
        trace = diurnal_trace(jitter=0.3, seed=9)
        assert all(p.rate >= 0.0 for p in trace._points)


class TestPhaseOffsets:
    def test_seed_stable(self):
        # Same (seed, index) must reproduce the exact same floats.
        assert phase_offsets(50) == phase_offsets(50)
        assert phase_offsets(50, seed=7) == phase_offsets(50, seed=7)
        assert phase_offsets(50, seed=7) != phase_offsets(50, seed=8)

    def test_prefix_stable(self):
        # Growing the room never reshuffles existing machines' phases.
        assert phase_offsets(200)[:50] == phase_offsets(50)

    def test_range_and_spread(self):
        offsets = phase_offsets(500, spread=0.25)
        assert all(0.0 <= value < 0.25 for value in offsets)
        assert phase_offsets(10, spread=0.0) == [0.0] * 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            phase_offsets(-1)
        with pytest.raises(ValueError):
            phase_offsets(10, spread=1.5)

    def test_zero_phase_is_identity(self):
        # phase=0 must reproduce the unshifted trace bit-for-bit: the
        # golden cluster traces were generated without the parameter.
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=3, phase=0.0)
        assert [p.rate for p in a._points] == [p.rate for p in b._points]

    def test_phase_rotates_peak(self):
        base = diurnal_trace(jitter=0.0)
        shifted = diurnal_trace(jitter=0.0, phase=0.2)
        # The shifted trace peaks 20% of the window later.
        peak_t = 0.6 * base.duration
        assert shifted.rate_at(peak_t + 0.2 * base.duration) == pytest.approx(
            base.rate_at(peak_t), rel=0.02
        )
        with pytest.raises(ValueError):
            diurnal_trace(phase=1.0)


class TestConstantTrace:
    def test_flat(self):
        trace = constant_trace(50.0, 100.0)
        assert trace.rate_at(0.0) == 50.0
        assert trace.rate_at(95.0) == 50.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            constant_trace(-1.0, 100.0)
