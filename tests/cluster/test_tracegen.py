"""Tests for the synthetic diurnal traffic trace."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster.tracegen import (
    RequestTrace,
    TracePoint,
    constant_trace,
    diurnal_shape,
    diurnal_shape_array,
    diurnal_trace,
    peak_rate_for_utilization,
    phase_offsets,
)
from repro.cluster.webserver import RequestMix


class TestRequestTrace:
    def test_step_semantics(self):
        trace = RequestTrace(
            [TracePoint(0.0, 10.0), TracePoint(100.0, 20.0)]
        )
        assert trace.rate_at(-5.0) == 0.0
        assert trace.rate_at(0.0) == 10.0
        assert trace.rate_at(99.0) == 10.0
        assert trace.rate_at(100.0) == 20.0

    def test_requires_points(self):
        with pytest.raises(ValueError):
            RequestTrace([])

    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            RequestTrace([TracePoint(5.0, 1.0), TracePoint(1.0, 1.0)])

    def test_total_requests_integrates(self):
        trace = RequestTrace(
            [TracePoint(0.0, 10.0), TracePoint(100.0, 0.0), TracePoint(200.0, 0.0)]
        )
        assert trace.total_requests() == pytest.approx(1000.0)


class TestPeakRate:
    def test_matches_mix_demand(self):
        mix = RequestMix()
        rate = peak_rate_for_utilization(0.7, 4, mix)
        # Feeding that rate to 4 servers puts each at 70% CPU.
        per_server = rate / 4
        assert per_server * mix.cpu_demand == pytest.approx(0.7)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            peak_rate_for_utilization(0.0, 4)
        with pytest.raises(ValueError):
            peak_rate_for_utilization(0.5, 0)


class TestDiurnalTrace:
    def test_deterministic(self):
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=3)
        assert [p.rate for p in a._points] == [p.rate for p in b._points]

    def test_seed_changes_jitter(self):
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=4)
        assert [p.rate for p in a._points] != [p.rate for p in b._points]

    def test_peak_rate_near_target(self):
        trace = diurnal_trace(peak_utilization=0.7, servers=4, jitter=0.0)
        expected = peak_rate_for_utilization(0.7, 4)
        assert trace.peak_rate == pytest.approx(expected, rel=0.02)

    def test_valley_to_peak_shape(self):
        trace = diurnal_trace(jitter=0.0, valley_fraction=0.15)
        start = trace.rate_at(0.0)
        peak = trace.rate_at(0.6 * trace.duration)
        end = trace.rate_at(trace.duration - 10.0)
        assert start < 0.3 * peak
        assert end < 0.7 * peak

    def test_plateau_widens_peak(self):
        narrow = diurnal_trace(jitter=0.0, plateau=1.0)
        wide = diurnal_trace(jitter=0.0, plateau=0.6)
        threshold = 0.95 * narrow.peak_rate
        def width(trace):
            return sum(
                10.0 for t in range(0, 2000, 10)
                if trace.rate_at(float(t)) >= threshold
            )
        assert width(wide) > width(narrow) * 1.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            diurnal_trace(duration=0.0)
        with pytest.raises(ValueError):
            diurnal_trace(plateau=0.0)

    def test_rates_never_negative(self):
        trace = diurnal_trace(jitter=0.3, seed=9)
        assert all(p.rate >= 0.0 for p in trace._points)


class TestPhaseOffsets:
    def test_seed_stable(self):
        # Same (seed, index) must reproduce the exact same floats.
        assert phase_offsets(50) == phase_offsets(50)
        assert phase_offsets(50, seed=7) == phase_offsets(50, seed=7)
        assert phase_offsets(50, seed=7) != phase_offsets(50, seed=8)

    def test_prefix_stable(self):
        # Growing the room never reshuffles existing machines' phases.
        assert phase_offsets(200)[:50] == phase_offsets(50)

    def test_range_and_spread(self):
        offsets = phase_offsets(500, spread=0.25)
        assert all(0.0 <= value < 0.25 for value in offsets)
        assert phase_offsets(10, spread=0.0) == [0.0] * 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            phase_offsets(-1)
        with pytest.raises(ValueError):
            phase_offsets(10, spread=1.5)

    def test_zero_phase_is_identity(self):
        # phase=0 must reproduce the unshifted trace bit-for-bit: the
        # golden cluster traces were generated without the parameter.
        a = diurnal_trace(seed=3)
        b = diurnal_trace(seed=3, phase=0.0)
        assert [p.rate for p in a._points] == [p.rate for p in b._points]

    def test_phase_rotates_peak(self):
        base = diurnal_trace(jitter=0.0)
        shifted = diurnal_trace(jitter=0.0, phase=0.2)
        # The shifted trace peaks 20% of the window later.
        peak_t = 0.6 * base.duration
        assert shifted.rate_at(peak_t + 0.2 * base.duration) == pytest.approx(
            base.rate_at(peak_t), rel=0.02
        )
        with pytest.raises(ValueError):
            diurnal_trace(phase=1.0)


class TestConstantTrace:
    def test_flat(self):
        trace = constant_trace(50.0, 100.0)
        assert trace.rate_at(0.0) == 50.0
        assert trace.rate_at(95.0) == 50.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            constant_trace(-1.0, 100.0)


class TestWrapSeam:
    """The day boundary must be continuous: shape(duration) == shape(0)."""

    def test_shape_reaches_valley_at_duration(self):
        from repro.cluster.tracegen import diurnal_shape

        assert diurnal_shape(2000.0, 2000.0) == pytest.approx(0.0)
        assert diurnal_shape(0.0, 2000.0) == pytest.approx(0.0)

    def test_shape_monotone_descent_to_valley(self):
        from repro.cluster.tracegen import diurnal_shape

        duration = 2000.0
        ts = [1200.0 + 10.0 * i for i in range(81)]  # peak .. duration
        values = [diurnal_shape(t, duration) for t in ts]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_trace_continuous_at_seam_without_jitter(self):
        trace = diurnal_trace(duration=2000.0, jitter=0.0, seed=3)
        eps = 1e-6
        peak = max(p.rate for p in trace.points)
        gap = abs(trace.rate_at(0.0) - trace.rate_at(2000.0 - eps))
        assert gap <= 0.01 * peak

    def test_jittered_seam_gap_bounded_by_jitter(self):
        jitter = 0.05
        trace = diurnal_trace(duration=2000.0, jitter=jitter, seed=7)
        clean = diurnal_trace(duration=2000.0, jitter=0.0, seed=7)
        eps = 1e-6
        gap = abs(trace.rate_at(0.0) - trace.rate_at(2000.0 - eps))
        # Both endpoints sit at the valley floor; the gap beyond the
        # jitter-free seam gap is pure noise, bounded by the jitter band
        # around the valley rate.
        clean_gap = abs(clean.rate_at(0.0) - clean.rate_at(2000.0 - eps))
        valley = min(p.rate for p in clean.points)
        assert gap <= clean_gap + 2.0 * jitter * 1.1 * valley

    def test_phase_offset_wraps_continuously(self):
        trace = diurnal_trace(
            duration=2000.0, jitter=0.0, seed=3, phase=0.5
        )
        # The phase-shifted trace samples the base shape mod duration;
        # with the descent fix there is no cliff anywhere in the day.
        rates = [trace.rate_at(float(t)) for t in range(0, 2000, 5)]
        peak = max(rates)
        jumps = [abs(a - b) for a, b in zip(rates, rates[1:])]
        assert max(jumps) < 0.03 * peak  # no phase-wrap discontinuity


class TestConstantTraceDuration:
    def test_duration_matches_request(self):
        trace = constant_trace(50.0, 25.0, step=10.0)
        assert trace.duration == pytest.approx(25.0)

    def test_terminal_point_emitted(self):
        trace = constant_trace(50.0, 25.0, step=10.0)
        times = [p.time for p in trace.points]
        assert times[-1] == pytest.approx(25.0)

    def test_total_requests_exact(self):
        trace = constant_trace(40.0, 25.0, step=10.0)
        assert trace.total_requests() == pytest.approx(40.0 * 25.0)

    def test_rejects_nonpositive_duration_or_step(self):
        with pytest.raises(ValueError):
            constant_trace(50.0, 0.0)
        with pytest.raises(ValueError):
            constant_trace(50.0, 10.0, step=0.0)


class TestDiurnalShapeArray:
    """The vectorized curve is elementwise *bit-equal* to the scalar one.

    ``ScaleSimulation.offered_rates`` evaluates the shared curve through
    ``diurnal_shape_array``; this pin guarantees a flattened room and a
    scalar trace generator see the identical workload.
    """

    @given(
        st.floats(min_value=1e-3, max_value=1e6),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1e-3, max_value=1.0),
    )
    def test_elementwise_equal_to_scalar(self, duration, frac, plateau):
        t = frac * duration
        scalar = diurnal_shape(t, duration, plateau)
        vector = diurnal_shape_array([t], duration, plateau)
        assert float(vector[0]) == scalar

    def test_whole_day_grid_bit_equal(self):
        duration = 86400.0
        times = np.linspace(0.0, duration, 2001)
        vector = diurnal_shape_array(times, duration)
        for t, v in zip(times, vector):
            assert float(v) == diurnal_shape(float(t), duration)

    def test_seam_continuity(self):
        # The PR 9 seam fix: the descent is clamped at phase=pi so the
        # day boundary is continuous (shape(duration) == shape(0) == 0).
        duration = 1000.0
        assert float(diurnal_shape_array(0.0, duration)) == 0.0
        assert float(diurnal_shape_array(duration, duration)) == 0.0
        just_past = diurnal_shape_array(
            np.array([duration * 0.999999, duration]), duration
        )
        assert float(just_past[1]) == 0.0

    def test_scalar_input_and_shape(self):
        out = diurnal_shape_array(500.0, 1000.0)
        assert out.shape == ()
        grid = diurnal_shape_array(np.zeros((3, 4)), 1000.0)
        assert grid.shape == (3, 4)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            diurnal_shape_array([0.0], 0.0)
        with pytest.raises(ValueError):
            diurnal_shape_array([0.0], 100.0, plateau=0.0)
        with pytest.raises(ValueError):
            diurnal_shape_array([0.0], 100.0, plateau=1.5)
