"""Tests for the full cluster simulation harness (short runs)."""

import pytest

from repro.cluster.simulation import (
    ClusterSimulation,
    emergency_script,
)
from repro.cluster.tracegen import constant_trace, diurnal_trace
from repro.config import table1
from repro.errors import ClusterError


def short_trace(rate=120.0, duration=400.0):
    return constant_trace(rate, duration)


class TestConstruction:
    def test_unknown_policy(self):
        with pytest.raises(ClusterError):
            ClusterSimulation(policy="cryogenics")

    def test_policy_wiring(self):
        assert ClusterSimulation(policy="none").admd is None
        assert ClusterSimulation(policy="freon").admd is not None
        assert ClusterSimulation(policy="traditional").traditional is not None
        from repro.freon.ec import AdmdEC

        assert isinstance(ClusterSimulation(policy="freon-ec").admd, AdmdEC)

    def test_default_trace_attached(self):
        sim = ClusterSimulation(policy="none")
        assert sim.trace.duration > 0


class TestBasicRun:
    def test_load_spreads_evenly(self):
        sim = ClusterSimulation(policy="none", trace=short_trace())
        result = sim.run(100)
        record = result.records[-1]
        utils = [record.servers[m].cpu_utilization for m in sim.machines]
        assert max(utils) - min(utils) < 1e-6
        assert utils[0] == pytest.approx(30.0 * sim.webservers["machine1"].mix.cpu_demand)

    def test_temperatures_rise_with_load(self):
        sim = ClusterSimulation(policy="none", trace=short_trace(rate=300.0))
        result = sim.run(400)
        start = result.records[10].servers["machine1"].cpu_temperature
        end = result.records[-1].servers["machine1"].cpu_temperature
        assert end > start + 5.0

    def test_no_drops_under_light_load(self):
        sim = ClusterSimulation(policy="none", trace=short_trace(rate=50.0))
        result = sim.run(200)
        assert result.drop_fraction == 0.0

    def test_overload_drops(self):
        # 4 servers x ~112 req/s capacity; offer 600/s.
        sim = ClusterSimulation(policy="none", trace=short_trace(rate=600.0))
        result = sim.run(200)
        assert result.drop_fraction > 0.2

    def test_records_per_tick(self):
        sim = ClusterSimulation(policy="none", trace=short_trace())
        result = sim.run(50)
        assert len(result.records) == 50
        assert result.times() == [float(t) for t in range(50)]

    def test_result_series_accessors(self):
        sim = ClusterSimulation(policy="none", trace=short_trace())
        result = sim.run(20)
        assert len(result.series("machine2", "cpu_utilization")) == 20
        assert result.active_series() == [4] * 20


class TestFiddleIntegration:
    def test_emergency_script_raises_inlet(self):
        sim = ClusterSimulation(
            policy="none",
            trace=short_trace(duration=700.0),
            fiddle_script=emergency_script(time=100.0),
        )
        result = sim.run(600)
        hot = result.records[-1].servers["machine1"].cpu_temperature
        cool = result.records[-1].servers["machine2"].cpu_temperature
        assert hot > cool + 8.0
        assert len(result.fiddle_log) == 2

    def test_emergency_script_contents(self):
        script = emergency_script()
        assert "sleep 480" in script
        assert "machine1 temperature inlet 38.6" in script
        assert "machine3 temperature inlet 35.6" in script


class TestPowerControl:
    def test_request_off_drains_then_off(self):
        sim = ClusterSimulation(policy="none", trace=short_trace())
        sim.run(10)
        sim.request_off("machine2")
        sim.run(5)
        assert "machine2" in sim.off_servers()
        record = sim.records[-1]
        assert record.servers["machine2"].state == "off"
        assert record.active_servers == 3

    def test_off_machine_cools_to_inlet(self):
        sim = ClusterSimulation(policy="none", trace=short_trace(rate=250.0, duration=3000.0))
        sim.run(300)
        sim.request_off("machine2")
        sim.run(2500)
        temp = sim.records[-1].servers["machine2"].cpu_temperature
        assert temp == pytest.approx(table1.INLET_TEMPERATURE, abs=1.0)

    def test_load_shifts_to_survivors(self):
        sim = ClusterSimulation(policy="none", trace=short_trace(rate=120.0, duration=1000.0))
        sim.run(10)
        before = sim.records[-1].servers["machine1"].cpu_utilization
        sim.request_off("machine4")
        sim.run(20)
        after = sim.records[-1].servers["machine1"].cpu_utilization
        assert after == pytest.approx(before * 4.0 / 3.0, rel=0.05)

    def test_request_on_boots_and_rejoins(self):
        sim = ClusterSimulation(policy="none", trace=short_trace(duration=1000.0), boot_time=5.0)
        sim.run(10)
        sim.request_off("machine3")
        sim.run(10)
        sim.request_on("machine3")
        sim.run(3)
        assert sim.records[-1].servers["machine3"].state == "booting"
        sim.run(10)
        assert sim.records[-1].servers["machine3"].state == "active"
        assert sim.records[-1].servers["machine3"].cpu_utilization > 0.0

    def test_boot_spike_visible_in_utilization(self):
        sim = ClusterSimulation(policy="none", trace=short_trace(duration=1000.0), boot_time=10.0)
        sim.run(5)
        sim.request_off("machine1")
        sim.run(5)
        sim.request_on("machine1")
        sim.run(5)
        assert sim.records[-1].servers["machine1"].cpu_utilization == 1.0

    def test_redundant_requests_ignored(self):
        sim = ClusterSimulation(policy="none", trace=short_trace())
        sim.run(5)
        sim.request_on("machine1")  # already on: no-op
        sim.request_off("machine2")
        sim.run(3)
        sim.request_off("machine2")  # already off: no-op
        assert sim.records[-1].active_servers == 3
