"""Tests for the adversarial workload scenario library."""

import pytest

from repro.cluster.scenarios import (
    CGI_HEAVY_MIX,
    SCENARIO_NAMES,
    build_scenario,
    flash_crowd_trace,
    is_scenario,
    megausers_trace,
    multi_region_trace,
    scenario_names,
)
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.tracegen import diurnal_trace, peak_rate_for_utilization
from repro.cluster.webserver import RequestMix
from repro.errors import ClusterError


class TestNames:
    def test_every_base_has_a_chaos_variant(self):
        names = scenario_names()
        assert len(names) == 2 * len(SCENARIO_NAMES)
        for base in SCENARIO_NAMES:
            assert base in names
            assert f"{base}-chaos" in names

    def test_is_scenario(self):
        assert is_scenario("flash-crowd")
        assert is_scenario("megausers-chaos")
        assert not is_scenario("emergency")
        assert not is_scenario("chaos")

    def test_plain_names_exclude_chaos(self):
        assert scenario_names(include_chaos=False) == SCENARIO_NAMES


class TestTraces:
    def test_flash_crowd_spikes_raise_rate_above_base(self):
        base = diurnal_trace(
            duration=2000.0, peak_utilization=0.55, jitter=0.03, seed=2006
        )
        spiked = flash_crowd_trace(duration=2000.0, seed=2006)
        # Right after the second (peak-time) spike the offered rate must
        # exceed the base trace by a visible margin.
        t = 0.62 * 2000.0 + 10.0
        assert spiked.rate_at(t) > base.rate_at(t) * 1.3

    def test_flash_crowd_spike_decays(self):
        trace = flash_crowd_trace(duration=2000.0)
        jump_t = 0.30 * 2000.0
        assert trace.rate_at(jump_t) > trace.rate_at(jump_t - 10.0)

    def test_multi_region_has_no_true_valley(self):
        plain = diurnal_trace(duration=2000.0, jitter=0.0)
        multi = multi_region_trace(duration=2000.0)
        floor = min(p.rate for p in multi.points)
        plain_floor = min(p.rate for p in plain.points)
        assert floor > 1.5 * plain_floor

    def test_multi_region_keeps_target_peak(self):
        multi = multi_region_trace(duration=2000.0, peak_utilization=0.70)
        target = peak_rate_for_utilization(0.70, 4)
        assert multi.peak_rate == pytest.approx(target, rel=1e-6)

    def test_multi_region_rejects_single_region(self):
        with pytest.raises(ClusterError):
            multi_region_trace(regions=1)

    def test_megausers_noise_scales_with_load(self):
        import statistics

        from repro.cluster.tracegen import diurnal_shape

        trace = megausers_trace(duration=2000.0, seed=11)
        peak = peak_rate_for_utilization(0.70, 4)
        valley = 0.15 * peak

        def residuals(indices):
            out = []
            for i in indices:
                point = trace.points[i]
                mean = valley + (peak - valley) * diurnal_shape(
                    point.time, 2000.0
                )
                out.append(point.rate - mean)
            return out

        # Poisson noise grows with the rate: the residual spread at the
        # peak must exceed the spread at the valley.
        valley_spread = statistics.stdev(residuals(range(0, 20)))
        peak_spread = statistics.stdev(residuals(range(110, 130)))
        assert peak_spread > 1.5 * valley_spread

    def test_megausers_deterministic(self):
        a = megausers_trace(seed=5)
        b = megausers_trace(seed=5)
        assert [p.rate for p in a.points] == [p.rate for p in b.points]
        c = megausers_trace(seed=6)
        assert [p.rate for p in a.points] != [p.rate for p in c.points]

    def test_megausers_rejects_no_users(self):
        with pytest.raises(ClusterError):
            megausers_trace(users=0)


class TestBuildScenario:
    def test_all_names_build(self):
        for name in scenario_names():
            built = build_scenario(name, duration=300.0)
            assert built.name == name
            assert built.trace.duration > 0.0
            assert built.fiddle_script.strip()

    def test_unknown_name_rejected(self):
        with pytest.raises(ClusterError):
            build_scenario("slashdot")

    def test_cgi_heavy_mix(self):
        built = build_scenario("cgi-heavy", duration=300.0)
        assert built.mix == CGI_HEAVY_MIX
        assert built.mix.dynamic_fraction == pytest.approx(0.60)
        other = build_scenario("flash-crowd", duration=300.0)
        assert other.mix == RequestMix()

    def test_chaos_variant_swaps_script(self):
        plain = build_scenario("flash-crowd", duration=300.0)
        chaos = build_scenario("flash-crowd-chaos", duration=300.0)
        assert not plain.chaos and chaos.chaos
        assert plain.fiddle_script != chaos.fiddle_script
        assert "loss" in chaos.fiddle_script
        # Identical workload under both scripts.
        assert [p.rate for p in plain.trace.points] == [
            p.rate for p in chaos.trace.points
        ]

    def test_deterministic(self):
        a = build_scenario("megausers", duration=300.0, seed=9)
        b = build_scenario("megausers", duration=300.0, seed=9)
        assert [p.rate for p in a.trace.points] == [
            p.rate for p in b.trace.points
        ]


class TestSimulationIntegration:
    def test_scenario_drives_simulation(self):
        sim = ClusterSimulation(
            policy="freon", scenario="flash-crowd", scenario_duration=300.0
        )
        sim.run(120.0)
        result = sim.result()
        assert result.records
        assert sim.scenario == "flash-crowd"

    def test_chaos_scenario_runs(self):
        sim = ClusterSimulation(
            policy="freon",
            scenario="megausers-chaos",
            scenario_duration=300.0,
            scenario_loss=0.10,
        )
        sim.run(120.0)
        assert sim.result().records

    def test_explicit_trace_wins_over_scenario(self):
        from repro.cluster.tracegen import constant_trace

        trace = constant_trace(10.0, 300.0)
        sim = ClusterSimulation(
            policy="freon", trace=trace, scenario="flash-crowd"
        )
        assert sim.trace is trace

    def test_checkpoint_roundtrip_with_scenario_and_cloning(self):
        from repro.cluster.lvs import CloningConfig

        def build():
            return ClusterSimulation(
                policy="freon",
                scenario="multi-region",
                scenario_duration=300.0,
                cloning=CloningConfig(clones=2),
            )

        first = build()
        first.run(60.0)
        snap = first.checkpoint()
        resumed = build()
        resumed.apply_checkpoint(snap)
        first.run(60.0)
        resumed.run(60.0)
        assert first.result().records[-3:] == resumed.result().records[-3:]

    def test_p99_latency_reported_with_cloning(self):
        from repro.cluster.lvs import CloningConfig

        base = ClusterSimulation(
            policy="freon", scenario="flash-crowd", scenario_duration=300.0
        )
        base.run(120.0)
        cloned = ClusterSimulation(
            policy="freon",
            scenario="flash-crowd",
            scenario_duration=300.0,
            cloning=CloningConfig(clones=2),
        )
        cloned.run(120.0)
        p_base = base.result().p99_latency()
        p_clone = cloned.result().p99_latency()
        assert p_base is not None and p_clone is not None
        # Low-load window: cloning must cut tail latency.
        assert p_clone < p_base
