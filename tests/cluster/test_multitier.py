"""Tests for the multi-tier Freon extension."""

import pytest

from repro.cluster.multitier import (
    APP_TIER_MIX,
    WEB_TIER_MIX,
    MultiTierSimulation,
)
from repro.cluster.tracegen import constant_trace
from repro.errors import ClusterError

EMERGENCY = "sleep 100\nfiddle app1 temperature inlet 38.6\n"


class TestConstruction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ClusterError):
            MultiTierSimulation(policy="freon-ec")

    def test_rejects_overlapping_tiers(self):
        with pytest.raises(ClusterError):
            MultiTierSimulation(
                web_machines=("a", "b"), app_machines=("b", "c")
            )

    def test_rejects_bad_app_fraction(self):
        with pytest.raises(ClusterError):
            MultiTierSimulation(app_fraction=1.5)

    def test_tier_mixes_have_expected_shape(self):
        # Front ends are disk-bound, back ends CPU-bound.
        assert WEB_TIER_MIX.disk_demand > WEB_TIER_MIX.cpu_demand
        assert APP_TIER_MIX.cpu_demand > APP_TIER_MIX.disk_demand * 5


class TestPipelineCoupling:
    def test_app_load_follows_served_web_load(self):
        sim = MultiTierSimulation(
            policy="none",
            trace=constant_trace(60.0, 400.0),
            app_fraction=0.30,
        )
        sim.run(50)
        tick = sim.records[-1]
        served_web = tick.web.offered - tick.web.dropped
        assert tick.app.offered == pytest.approx(0.30 * served_web)

    def test_web_drops_shield_app_tier(self):
        # Saturate the web tier: the app tier's offered load caps at
        # served-web * fraction, not offered-web * fraction.
        sim = MultiTierSimulation(
            policy="none",
            web_machines=("web1",),
            trace=constant_trace(120.0, 300.0),
            app_fraction=0.30,
        )
        result = sim.run(100)
        assert result.web_drop_fraction > 0.1
        tick = sim.records[-1]
        assert tick.app.offered < 0.30 * tick.web.offered

    def test_zero_app_fraction(self):
        sim = MultiTierSimulation(
            policy="none",
            trace=constant_trace(60.0, 300.0),
            app_fraction=0.0,
        )
        result = sim.run(50)
        assert all(r.app.offered == 0.0 for r in sim.records)
        assert result.app_drop_fraction == 0.0

    def test_both_tiers_heat_with_load(self):
        sim = MultiTierSimulation(
            policy="none", trace=constant_trace(90.0, 2000.0)
        )
        sim.run(1500)
        tick = sim.records[-1]
        assert tick.app.cpu_temperatures["app1"] > 40.0
        assert tick.web.cpu_temperatures["web1"] > 25.0
        # The CPU-heavy tier runs hotter than the disk-heavy tier.
        assert (
            tick.app.cpu_temperatures["app1"]
            > tick.web.cpu_temperatures["web1"]
        )


class TestFreonPerTier:
    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for policy in ("none", "freon"):
            sim = MultiTierSimulation(policy=policy, fiddle_script=EMERGENCY)
            results[policy] = sim.run(2000)
        return results

    def test_emergency_contained_by_app_tier_freon(self, runs):
        unmanaged = runs["none"].max_temperature("app", "app1")
        managed = runs["freon"].max_temperature("app", "app1")
        assert unmanaged > 69.0          # unmanaged crosses the red line
        assert managed < 69.0            # Freon keeps it below the red line
        assert managed < unmanaged - 2.5  # and well below unmanaged

    def test_adjustments_only_on_the_hot_tier(self, runs):
        adjustments = runs["freon"].adjustments
        assert adjustments["web"] == []
        assert any(m == "app1" for _, m, _ in adjustments["app"])

    def test_no_end_to_end_drops_under_freon(self, runs):
        assert runs["freon"].end_to_end_drop_fraction == 0.0

    def test_siblings_absorb_the_shifted_load(self, runs):
        records = runs["freon"].records
        peak_util = max(r.app.cpu_utilizations["app2"] for r in records)
        assert peak_util > 0.70
