"""Tests for the LVS-style weighted least-connections balancer model."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.lvs import LoadBalancer, ServerState
from repro.errors import ClusterError, ServerStateError


@pytest.fixture
def balancer():
    return LoadBalancer(["m1", "m2", "m3", "m4"])


def uniform(names, value):
    return {name: value for name in names}


NAMES = ["m1", "m2", "m3", "m4"]
CAP = uniform(NAMES, 100.0)
RT = uniform(NAMES, 0.05)


class TestConstruction:
    def test_requires_servers(self):
        with pytest.raises(ClusterError):
            LoadBalancer([])

    def test_unknown_server(self, balancer):
        with pytest.raises(ClusterError):
            balancer.server("nope")


class TestWeightedAllocation:
    def test_equal_weights_split_evenly(self, balancer):
        allocation = balancer.allocate(80.0, CAP, RT)
        for name in NAMES:
            assert allocation.rates[name] == pytest.approx(20.0)
        assert allocation.dropped_rate == 0.0

    def test_weights_shift_load(self, balancer):
        balancer.set_weight("m1", 3.0)
        allocation = balancer.allocate(60.0, CAP, RT)
        assert allocation.rates["m1"] == pytest.approx(30.0)
        assert allocation.rates["m2"] == pytest.approx(10.0)

    def test_zero_offered(self, balancer):
        allocation = balancer.allocate(0.0, CAP, RT)
        assert all(rate == 0.0 for rate in allocation.rates.values())

    def test_negative_offered_rejected(self, balancer):
        with pytest.raises(ClusterError):
            balancer.allocate(-1.0, CAP, RT)

    def test_minimum_weight_floor(self, balancer):
        balancer.set_weight("m1", 0.0)
        assert balancer.server("m1").weight > 0.0

    @given(offered=st.floats(min_value=0.0, max_value=350.0))
    def test_conservation(self, offered):
        balancer = LoadBalancer(NAMES)
        allocation = balancer.allocate(offered, CAP, RT)
        total = sum(allocation.rates.values()) + allocation.dropped_rate
        assert total == pytest.approx(offered, abs=1e-6)

    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=4, max_size=4
        )
    )
    def test_rates_proportional_to_weights(self, weights):
        balancer = LoadBalancer(NAMES)
        for name, weight in zip(NAMES, weights):
            balancer.set_weight(name, weight)
        allocation = balancer.allocate(50.0, CAP, RT)
        total_weight = sum(weights)
        for name, weight in zip(NAMES, weights):
            assert allocation.rates[name] == pytest.approx(
                50.0 * weight / total_weight, rel=1e-6
            )


class TestCapsAndCapacity:
    def test_capacity_ceiling_respected(self, balancer):
        capacity = dict(CAP)
        capacity["m1"] = 10.0
        allocation = balancer.allocate(200.0, capacity, RT)
        assert allocation.rates["m1"] == pytest.approx(10.0)
        # The other three absorb the remainder.
        assert sum(allocation.rates.values()) == pytest.approx(200.0)

    def test_connection_limit_caps_rate(self, balancer):
        # Little's law: cap 2 connections at 0.05 s response time -> 40/s.
        balancer.set_connection_limit("m1", 2.0)
        allocation = balancer.allocate(400.0, CAP, RT)
        assert allocation.rates["m1"] == pytest.approx(40.0)

    def test_drops_when_everything_saturated(self, balancer):
        allocation = balancer.allocate(500.0, CAP, RT)
        assert allocation.dropped_rate == pytest.approx(100.0)
        assert balancer.total_dropped == pytest.approx(100.0)

    def test_drop_fraction_accumulates(self, balancer):
        balancer.allocate(500.0, CAP, RT)
        balancer.allocate(300.0, CAP, RT)
        assert balancer.drop_fraction() == pytest.approx(100.0 / 800.0)

    def test_unlimited_when_no_cap(self, balancer):
        balancer.set_connection_limit("m1", None)
        allocation = balancer.allocate(100.0, CAP, RT)
        assert allocation.rates["m1"] == pytest.approx(25.0)

    def test_negative_limit_rejected(self, balancer):
        with pytest.raises(ClusterError):
            balancer.set_connection_limit("m1", -1.0)


class TestMembership:
    def test_quiesced_server_gets_nothing(self, balancer):
        balancer.quiesce("m1")
        allocation = balancer.allocate(90.0, CAP, RT)
        assert allocation.rates["m1"] == 0.0
        assert sum(allocation.rates.values()) == pytest.approx(90.0)

    def test_mark_off_requires_drained(self, balancer):
        balancer.quiesce("m1")
        balancer.server("m1").active_connections = 3.0
        with pytest.raises(ServerStateError):
            balancer.mark_off("m1")
        balancer.server("m1").active_connections = 0.0
        balancer.mark_off("m1")
        assert balancer.server("m1").state is ServerState.OFF

    def test_quiesce_off_server_rejected(self, balancer):
        balancer.quiesce("m1")
        balancer.server("m1").active_connections = 0.0
        balancer.mark_off("m1")
        with pytest.raises(ServerStateError):
            balancer.quiesce("m1")

    def test_activate_restores_scheduling(self, balancer):
        balancer.quiesce("m1")
        balancer.activate("m1")
        allocation = balancer.allocate(40.0, CAP, RT)
        assert allocation.rates["m1"] == pytest.approx(10.0)

    def test_no_active_servers_drops_everything(self):
        balancer = LoadBalancer(["only"])
        balancer.quiesce("only")
        allocation = balancer.allocate(10.0, {"only": 100.0}, {"only": 0.05})
        assert allocation.dropped_rate == pytest.approx(10.0)

    def test_connection_stats(self, balancer):
        balancer.server("m2").active_connections = 5.5
        stats = balancer.connection_stats()
        assert stats["m2"] == 5.5
        assert stats["m1"] == 0.0


class TestActiveCacheInvalidation:
    """Every state transition must drop the cached active-server list.

    The regression mode: ``allocate`` caches (active servers, weight
    sum); a later ``quiesce``/``mark_off``/``activate``/``set_weight``
    that forgot to invalidate would keep scheduling to stale membership.
    """

    def test_quiesce_after_cached_allocate(self, balancer):
        balancer.allocate(80.0, CAP, RT)  # populates _active_cache
        balancer.quiesce("m1")
        allocation = balancer.allocate(80.0, CAP, RT)
        assert allocation.rates["m1"] == 0.0
        assert sum(allocation.rates.values()) == pytest.approx(80.0)

    def test_mark_off_after_cached_allocate(self, balancer):
        balancer.allocate(80.0, CAP, RT)
        balancer.quiesce("m1")
        balancer.allocate(80.0, CAP, RT)
        balancer.mark_off("m1")
        assert balancer.server("m1") not in balancer.active_servers()

    def test_activate_after_cached_allocate(self, balancer):
        balancer.quiesce("m1")
        balancer.allocate(80.0, CAP, RT)  # cache excludes m1
        balancer.activate("m1")
        allocation = balancer.allocate(80.0, CAP, RT)
        assert allocation.rates["m1"] == pytest.approx(20.0)

    def test_set_weight_after_cached_allocate(self, balancer):
        balancer.allocate(80.0, CAP, RT)
        balancer.set_weight("m1", 3.0)
        allocation = balancer.allocate(60.0, CAP, RT)
        assert allocation.rates["m1"] == pytest.approx(30.0)


class TestVectorizedAllocate:
    def test_infinite_ceilings_place_everything(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import allocate_rates

        rates, dropped = allocate_rates(
            1000.0, np.ones(8), np.full(8, np.inf)
        )
        assert dropped == 0.0
        assert rates.sum() == pytest.approx(1000.0)
        assert rates == pytest.approx(np.full(8, 125.0))

    def test_all_saturated_drops_excess(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import allocate_rates

        rates, dropped = allocate_rates(
            500.0, np.ones(4), np.full(4, 100.0)
        )
        assert rates == pytest.approx(np.full(4, 100.0))
        assert dropped == pytest.approx(100.0)

    def test_zero_weight_servers_get_nothing(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import allocate_rates

        weights = np.array([1.0, 0.0, 1.0])
        rates, dropped = allocate_rates(90.0, weights, np.full(3, 100.0))
        assert rates[1] == 0.0
        assert rates.sum() + dropped == pytest.approx(90.0)


class TestCloning:
    def cfg(self, **kw):
        from repro.cluster.lvs import CloningConfig

        return CloningConfig(**kw)

    def test_work_multiplier_and_latency_scale(self):
        cfg = self.cfg(clones=2, cancel_overhead=0.10)
        assert cfg.work_multiplier == pytest.approx(1.05)
        assert cfg.latency_scale == pytest.approx(0.5)
        assert self.cfg(clones=1).work_multiplier == 1.0

    def test_rejects_bad_config(self):
        with pytest.raises(ClusterError):
            self.cfg(clones=0)
        with pytest.raises(ClusterError):
            self.cfg(cancel_overhead=1.5)
        with pytest.raises(ClusterError):
            self.cfg(utilization_ceiling=0.0)

    def test_low_load_clones(self, balancer):
        cfg = self.cfg(clones=2)
        allocation = balancer.allocate_cloned(100.0, CAP, RT, cfg)
        assert allocation.cloned
        assert allocation.latency_scale == pytest.approx(0.5)
        # Backends see the inflated work rate...
        assert sum(allocation.rates.values()) == pytest.approx(105.0)
        # ...but the counters stay in request units.
        assert balancer.total_offered == pytest.approx(100.0)
        assert balancer.total_dropped == 0.0

    def test_high_load_sheds_to_single_dispatch(self, balancer):
        cfg = self.cfg(clones=2, utilization_ceiling=0.75)
        allocation = balancer.allocate_cloned(350.0, CAP, RT, cfg)
        assert not allocation.cloned
        assert allocation.latency_scale == 1.0
        assert sum(allocation.rates.values()) == pytest.approx(350.0)

    def test_graceful_degradation_no_throughput_collapse(self, balancer):
        # Overload: cloned throughput must equal uncloned throughput.
        cfg = self.cfg(clones=3)
        cloned = balancer.allocate_cloned(500.0, CAP, RT, cfg)
        other = LoadBalancer(NAMES)
        plain = other.allocate(500.0, CAP, RT)
        assert sum(cloned.rates.values()) == pytest.approx(
            sum(plain.rates.values())
        )
        assert cloned.dropped_rate == pytest.approx(plain.dropped_rate)

    def test_drop_fraction_in_request_units(self, balancer):
        cfg = self.cfg(clones=2)
        balancer.allocate_cloned(100.0, CAP, RT, cfg)   # clones
        balancer.allocate_cloned(500.0, CAP, RT, cfg)   # sheds, drops 100
        assert balancer.drop_fraction() == pytest.approx(100.0 / 600.0)

    def test_clones_one_is_identity(self, balancer):
        cfg = self.cfg(clones=1)
        allocation = balancer.allocate_cloned(100.0, CAP, RT, cfg)
        assert not allocation.cloned
        assert sum(allocation.rates.values()) == pytest.approx(100.0)


class TestVectorizedCloning:
    def test_matches_scalar_semantics(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import CloningConfig, allocate_rates_cloned

        cfg = CloningConfig(clones=2)
        rates, dropped, scale, cloned = allocate_rates_cloned(
            100.0, np.ones(4), np.full(4, 100.0), cfg
        )
        assert cloned and scale == pytest.approx(0.5)
        assert rates.sum() == pytest.approx(105.0)
        assert dropped == 0.0

    def test_sheds_above_ceiling(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import CloningConfig, allocate_rates_cloned

        cfg = CloningConfig(clones=2, utilization_ceiling=0.75)
        rates, dropped, scale, cloned = allocate_rates_cloned(
            350.0, np.ones(4), np.full(4, 100.0), cfg
        )
        assert not cloned and scale == 1.0
        assert rates.sum() == pytest.approx(350.0)

    def test_infinite_ceilings_never_shed(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import CloningConfig, allocate_rates_cloned

        cfg = CloningConfig(clones=2)
        rates, dropped, scale, cloned = allocate_rates_cloned(
            1e6, np.ones(4), np.full(4, np.inf), cfg
        )
        assert cloned and dropped == 0.0

    def test_dropped_reported_in_request_units(self):
        np = pytest.importorskip("numpy")
        from repro.cluster.lvs import CloningConfig, allocate_rates_cloned

        # Force cloning to persist into saturation with a ceiling of 1.0
        # so the drop conversion (work -> requests) is visible.
        cfg = CloningConfig(clones=2, utilization_ceiling=1.0)
        rates, dropped, scale, cloned = allocate_rates_cloned(
            400.0, np.ones(4), np.full(4, 100.0), cfg
        )
        assert not cloned  # 400 * 1.05 = 420 > 1.0 * 400: sheds
        rates, dropped, scale, cloned = allocate_rates_cloned(
            380.0, np.ones(4), np.full(4, 100.0), cfg
        )
        assert cloned  # 380 * 1.05 = 399 <= 400
        # 399 work offered, 400 capacity: nothing dropped.
        assert dropped == 0.0
