"""Short chaos runs: fault scripts driving the full cluster simulation."""

import pytest

from repro.cluster.simulation import ClusterSimulation, chaos_script
from repro.cluster.tracegen import constant_trace
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultKind, FaultSpec


def short_trace(rate=120.0, duration=400.0):
    return constant_trace(rate, duration)


class TestFaultScripts:
    def test_fault_statements_fire_on_the_simulation_clock(self):
        script = (
            "fault net loss 0.3\n"
            "sleep 100\n"
            "fault machine2 sensor stuck disk 45\n"
        )
        sim = ClusterSimulation(
            policy="freon", trace=short_trace(), fiddle_script=script
        )
        result = sim.run(150)
        times = dict(
            (event, t) for t, event in result.fault_log if "inject" in event
        )
        assert any("loss" in e for e in times)
        assert any("stuck" in e for e in times)
        stuck_time = next(t for e, t in times.items() if "stuck" in e)
        assert stuck_time == pytest.approx(100.0)

    def test_chaos_script_parses_and_runs(self):
        sim = ClusterSimulation(
            policy="freon",
            trace=short_trace(duration=100.0),
            fiddle_script=chaos_script(),
        )
        sim.run(50)  # only the initial loss fault fires this early
        assert len(sim.injector.active) == 1

    def test_sensor_lies_while_records_keep_ground_truth(self):
        script = "fault machine2 sensor stuck disk 45\n"
        sim = ClusterSimulation(
            policy="freon", trace=short_trace(), fiddle_script=script
        )
        result = sim.run(100)
        # The faulted reader sees the frozen value...
        assert sim.service.read_temperature("machine2", "disk") == 45.0
        # ...but the per-tick record tracks the physical temperature.
        recorded = result.records[-1].servers["machine2"].disk_temperature
        assert recorded != 45.0
        assert recorded == pytest.approx(
            sim.service.true_temperature("machine2", "disk")
        )


class TestWatchdog:
    def test_crashed_tempd_is_restarted(self):
        script = "sleep 50\nfault machine1 daemon crash tempd\n"
        sim = ClusterSimulation(
            policy="freon",
            trace=short_trace(),
            fiddle_script=script,
            watchdog_restart_delay=10.0,
        )
        result = sim.run(120)
        assert len(result.restarts) == 1
        event = result.restarts[0]
        assert (event.machine, event.daemon) == ("machine1", "tempd")
        assert 60.0 <= event.time <= 70.0
        assert sim.injector.daemon_up("machine1", "tempd")

    def test_restarted_tempd_keeps_the_wake_grid(self):
        script = "sleep 50\nfault machine1 daemon crash tempd\n"
        sim = ClusterSimulation(
            policy="freon", trace=short_trace(), fiddle_script=script
        )
        sim.run(130)
        # Restart at ~t=60: the kernel keeps one wake event per machine
        # on the monitor-period grid across crashes and restarts, so
        # alignment is structural rather than re-derived from a phase.
        period = sim.config.monitor_period
        wakes = [
            e for e in sim.kernel.pending
            if e.kind == "wake" and e.payload["machine"] == "machine1"
        ]
        assert len(wakes) == 1
        assert wakes[0].time > sim.time
        assert wakes[0].time % period == pytest.approx(0.0, abs=1e-6)
        # The restarted daemon actually woke on the grid after coming back.
        restarted = sim.tempds["machine1"]
        assert sim.injector.daemon_up("machine1", "tempd")
        assert restarted.telemetry is sim.telemetry


class TestDeterminism:
    def _run(self, seed):
        script = (
            "fault net loss 0.4\n"
            "fault machine2 sensor noise cpu 0.5\n"
            "sleep 60\n"
            "fault machine1 daemon crash tempd\n"
        )
        sim = ClusterSimulation(
            policy="freon",
            trace=short_trace(),
            fiddle_script=script,
            injector=FaultInjector(seed=seed),
        )
        return sim.run(200)

    def test_same_seed_is_bit_identical(self):
        first = self._run(seed=3)
        second = self._run(seed=3)
        assert first.records == second.records
        assert first.fault_log == second.fault_log
        assert first.datagram_stats == second.datagram_stats
        assert first.restarts == second.restarts

    def test_injected_faults_appear_in_result_log(self):
        result = self._run(seed=3)
        injects = [e for _, e in result.fault_log if "inject" in e]
        assert len(injects) == 3


class TestManualInjection:
    def test_programmatic_injection_without_script(self):
        sim = ClusterSimulation(policy="freon", trace=short_trace())
        sim.injector.inject(
            FaultSpec(
                kind=FaultKind.SENSOR_STUCK,
                machine="machine3",
                target="cpu",
                value=20.0,
            )
        )
        sim.run(20)
        assert sim.service.read_temperature("machine3", "cpu") == 20.0
