"""Tests for the web-server queueing model."""

import pytest

from repro.cluster.webserver import (
    PowerState,
    RequestMix,
    ServerLoad,
    WebServer,
)
from repro.errors import ServerStateError


class TestRequestMix:
    def test_paper_mix_demands(self):
        mix = RequestMix()
        # 30% dynamic at 25 ms CPU dominates the CPU demand.
        assert mix.cpu_demand == pytest.approx(0.3 * 0.025 + 0.7 * 0.002)
        assert mix.disk_demand == pytest.approx(0.3 * 0.001 + 0.7 * 0.008)

    def test_capacity_is_bottleneck_inverse(self):
        mix = RequestMix()
        assert mix.capacity() == pytest.approx(1.0 / mix.cpu_demand)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            RequestMix(dynamic_fraction=1.5)


class TestLoadModel:
    def test_utilization_linear_in_rate(self):
        server = WebServer("s1")
        load = server.step(50.0, 1.0)
        assert load.cpu_utilization == pytest.approx(50.0 * server.mix.cpu_demand)
        assert load.disk_utilization == pytest.approx(
            50.0 * server.mix.disk_demand
        )

    def test_utilization_clamped(self):
        server = WebServer("s1")
        load = server.step(1e6, 1.0)
        assert load.cpu_utilization == 1.0
        assert load.disk_utilization == 1.0

    def test_response_time_inflates_under_load(self):
        server = WebServer("s1")
        light = server.step(10.0, 1.0).response_time
        heavy = server.step(100.0, 1.0).response_time
        assert heavy > light * 2

    def test_response_time_bounded(self):
        server = WebServer("s1")
        load = server.step(server.mix.capacity(), 1.0)
        assert load.response_time <= server.mix.base_response_time * 10.0 + 1e-9

    def test_littles_law(self):
        server = WebServer("s1")
        load = server.step(40.0, 1.0)
        assert load.connections == pytest.approx(40.0 * load.response_time)

    def test_zero_rate_idle(self):
        server = WebServer("s1")
        load = server.step(0.0, 1.0)
        assert load.cpu_utilization == 0.0
        assert load.connections == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            WebServer("s1").step(-1.0, 1.0)


class TestPowerStateMachine:
    def test_initial_states(self):
        assert WebServer("a").state is PowerState.ACTIVE
        assert WebServer("b", start_on=False).state is PowerState.OFF

    def test_boot_sequence(self):
        server = WebServer("s1", boot_time=3.0, start_on=False)
        server.power_on()
        assert server.state is PowerState.BOOTING
        # CPU pegged during boot (the paper's turn-on utilization spike).
        load = server.step(0.0, 1.0)
        assert load.cpu_utilization == 1.0
        server.step(0.0, 1.0)
        server.step(0.0, 1.0)
        assert server.state is PowerState.ACTIVE

    def test_power_on_only_from_off(self):
        server = WebServer("s1")
        with pytest.raises(ServerStateError):
            server.power_on()

    def test_drain_goes_off_when_empty(self):
        server = WebServer("s1")
        server.step(50.0, 1.0)
        server.begin_drain()
        assert server.state is PowerState.DRAINING
        server.step(0.0, 1.0)
        assert server.state is PowerState.OFF

    def test_drain_only_from_active(self):
        server = WebServer("s1", start_on=False)
        with pytest.raises(ServerStateError):
            server.begin_drain()

    def test_off_server_has_no_load(self):
        server = WebServer("s1", start_on=False)
        load = server.step(100.0, 1.0)
        assert load.cpu_utilization == 0.0
        assert server.capacity() == 0.0

    def test_accepts_load_flags(self):
        server = WebServer("s1")
        assert server.accepts_load
        server.begin_drain()
        assert not server.accepts_load
        assert server.is_on
        server.step(0.0, 1.0)
        assert not server.is_on

    def test_booting_consumes_power_but_accepts_nothing(self):
        server = WebServer("s1", boot_time=10.0, start_on=False)
        server.power_on()
        assert server.is_on
        assert not server.accepts_load
        assert server.capacity() == 0.0

    def test_full_cycle_off_on_off(self):
        server = WebServer("s1", boot_time=1.0)
        server.step(20.0, 1.0)
        server.begin_drain()
        server.step(0.0, 1.0)
        assert server.state is PowerState.OFF
        server.power_on()
        server.step(0.0, 1.0)
        server.step(0.0, 1.0)
        assert server.state is PowerState.ACTIVE
        load = server.step(20.0, 1.0)
        assert load.cpu_utilization > 0.0
