"""Tests for DVFS effects in the web-server model and the cluster harness."""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.cluster.tracegen import constant_trace
from repro.cluster.webserver import WebServer
from repro.config import table1


class TestSpeedFactor:
    def test_default_full_speed(self):
        assert WebServer("s").speed_factor == 1.0

    def test_bounds(self):
        server = WebServer("s")
        with pytest.raises(ValueError):
            server.set_speed_factor(0.0)
        with pytest.raises(ValueError):
            server.set_speed_factor(1.5)

    def test_capacity_scales_with_frequency(self):
        server = WebServer("s")
        full = server.capacity()
        server.set_speed_factor(0.5)
        # The CPU is the bottleneck for the paper's mix, so halving the
        # clock halves the capacity.
        assert server.capacity() == pytest.approx(full * 0.5)

    def test_utilization_rises_at_same_rate(self):
        fast = WebServer("fast")
        slow = WebServer("slow")
        slow.set_speed_factor(0.5)
        fast_load = fast.step(40.0, 1.0)
        slow_load = slow.step(40.0, 1.0)
        assert slow_load.cpu_utilization == pytest.approx(
            2.0 * fast_load.cpu_utilization
        )
        # Disk work is unaffected by the CPU clock.
        assert slow_load.disk_utilization == pytest.approx(
            fast_load.disk_utilization
        )

    def test_response_time_stretches(self):
        fast = WebServer("fast")
        slow = WebServer("slow")
        slow.set_speed_factor(0.5)
        assert slow.step(10.0, 1.0).response_time > fast.step(
            10.0, 1.0
        ).response_time


class TestLocalDvfsPolicy:
    def test_governors_wired_per_machine(self):
        sim = ClusterSimulation(policy="local-dvfs")
        assert set(sim.governors) == set(sim.machines)
        assert sim.admd is None

    def test_quiet_without_emergency(self):
        sim = ClusterSimulation(
            policy="local-dvfs", trace=constant_trace(120.0, 400.0)
        )
        result = sim.run(300)
        assert result.pstate_changes == []
        for governor in sim.governors.values():
            assert not governor.throttled

    def test_emergency_triggers_throttling(self):
        sim = ClusterSimulation(
            policy="local-dvfs", fiddle_script=emergency_script(time=100.0),
            trace=constant_trace(290.0, 2100.0),
        )
        result = sim.run(2000)
        throttled = {c for c in result.pstate_changes}
        assert throttled, "expected at least one P-state change"
        # Thermal control achieved without the balancer's help.
        assert result.max_temperature("machine1") < table1.T_RED_CPU
        # The throttled machine's power scale is reflected in Mercury.
        sim2_changes = [c.index for c in result.pstate_changes]
        assert max(sim2_changes) >= 1

    def test_throttled_machine_burns_utilization(self):
        # Section 4.3's cost of local throttling: at the same request
        # rate the throttled machine's CPU busy fraction is higher than
        # its full-speed peers' (the same work on a slower clock).
        sim = ClusterSimulation(
            policy="local-dvfs", fiddle_script=emergency_script(time=100.0),
            trace=constant_trace(300.0, 2100.0),
        )
        result = sim.run(1600)
        assert result.pstate_changes, "expected throttling at this load"
        t_first = result.pstate_changes[0].time
        after = [r for r in result.records if r.time > t_first + 60]
        hot_util = max(r.servers["machine1"].cpu_utilization for r in after)
        cool_util = max(r.servers["machine2"].cpu_utilization for r in after)
        assert hot_util > cool_util + 0.1
        # Yet both serve the same request rate (no capacity squeeze at
        # this load level).
        hot_rate = max(r.servers["machine1"].rate for r in after)
        cool_rate = max(r.servers["machine2"].rate for r in after)
        assert hot_rate == pytest.approx(cool_rate, rel=0.05)
