"""Telemetry wiring through the cluster harness.

Two contracts: an enabled facade sees every instrumented layer of a
run, and wiring one in (or leaving it out) never perturbs the
simulation itself — the fault log, datagram stats, and tick records
stay bit-identical.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, chaos_script
from repro.telemetry import Telemetry

DURATION = 1200.0


@pytest.fixture(scope="module")
def telemetry_run():
    telemetry = Telemetry()
    sim = ClusterSimulation(
        policy="freon", fiddle_script=chaos_script(), telemetry=telemetry
    )
    result = sim.run(DURATION)
    return telemetry, sim, result


class TestCoverage:
    def test_solver_layer(self, telemetry_run):
        telemetry, _, _ = telemetry_run
        registry = telemetry.registry
        assert registry.total("solver_ticks_total") == DURATION
        assert registry.total("solver_tick_seconds") == DURATION
        assert registry.value("solver_sim_time_seconds") == DURATION

    def test_sensor_layer(self, telemetry_run):
        telemetry, _, _ = telemetry_run
        assert telemetry.registry.total("sensor_queries_total") > 0
        # The chaos script sticks machine2's disk sensor.
        assert telemetry.registry.total("sensor_faulted_reads_total") > 0

    def test_daemon_layer(self, telemetry_run):
        telemetry, sim, _ = telemetry_run
        registry = telemetry.registry
        wakes = sum(
            registry.value("tempd_wakes_total", {"machine": name})
            for name in sim.machines
        )
        assert wakes > 0
        assert registry.total("tempd_messages_total") > 0

    def test_freon_layer(self, telemetry_run):
        telemetry, _, result = telemetry_run
        registry = telemetry.registry
        assert registry.value(
            "freon_actuations_total", {"action": "adjust"}
        ) == len(result.adjustments)
        stats = result.datagram_stats
        for fate in ("sent", "delivered", "dropped"):
            assert registry.value(
                "freon_datagrams_total", {"fate": fate}
            ) == stats[fate]

    def test_fault_layer(self, telemetry_run):
        telemetry, _, result = telemetry_run
        assert telemetry.registry.total("fault_log_entries_total") == len(
            result.fault_log
        )
        fault_events = [
            e for e in telemetry.events.events if e.name.startswith("fault_")
        ]
        assert len(fault_events) == len(result.fault_log)

    def test_cluster_layer(self, telemetry_run):
        telemetry, _, result = telemetry_run
        registry = telemetry.registry
        assert registry.total("cluster_requests_offered_total") == (
            pytest.approx(result.total_offered)
        )
        assert registry.total("cluster_requests_dropped_total") == (
            pytest.approx(result.total_dropped)
        )
        samples = [
            e for e in telemetry.events.events if e.name == "server_tick"
        ]
        assert samples, "per-machine series samples must be emitted"
        assert {"machine", "weight", "value"} <= set(samples[0].attrs)


class TestNonPerturbation:
    def test_instrumented_run_is_bit_identical(self, telemetry_run):
        _, _, instrumented = telemetry_run
        bare = ClusterSimulation(
            policy="freon", fiddle_script=chaos_script()
        ).run(DURATION)
        assert bare.fault_log == instrumented.fault_log
        assert bare.datagram_stats == instrumented.datagram_stats
        assert bare.adjustments == instrumented.adjustments
        assert bare.records == instrumented.records

    def test_default_is_null_telemetry(self):
        sim = ClusterSimulation(policy="freon")
        assert not sim.telemetry.enabled
        assert sim.solver.telemetry is sim.telemetry
        assert sim.injector.telemetry is sim.telemetry
