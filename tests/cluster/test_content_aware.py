"""Tests for content-aware distribution and the two-stage policy."""

import pytest

from repro.cluster.content_aware import (
    CLASSES,
    DYNAMIC,
    STATIC,
    ContentAwareBalancer,
    TwoStageFreon,
    classed_load,
)
from repro.cluster.webserver import RequestMix
from repro.errors import ClusterError

SERVERS = ["m1", "m2", "m3", "m4"]


@pytest.fixture
def balancer():
    return ContentAwareBalancer(SERVERS)


class TestClassedLoad:
    def test_dynamic_is_cpu_heavy(self):
        load = classed_load(dynamic_rate=20.0, static_rate=0.0)
        assert load.cpu_utilization > load.disk_utilization * 5

    def test_static_is_disk_heavy(self):
        load = classed_load(dynamic_rate=0.0, static_rate=50.0)
        assert load.disk_utilization > load.cpu_utilization * 2

    def test_clamped(self):
        load = classed_load(1e6, 1e6)
        assert load.cpu_utilization == 1.0
        assert load.disk_utilization == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ClusterError):
            classed_load(-1.0, 0.0)


class TestContentAwareBalancer:
    def test_even_split_by_default(self, balancer):
        rates, dropped = balancer.allocate(
            {DYNAMIC: 40.0, STATIC: 80.0}, {s: 1000.0 for s in SERVERS}
        )
        for server in SERVERS:
            assert rates[server][DYNAMIC] == pytest.approx(10.0)
            assert rates[server][STATIC] == pytest.approx(20.0)
        assert dropped == 0.0

    def test_classes_steered_independently(self, balancer):
        balancer.set_weight("m1", DYNAMIC, 0.0)  # floors at epsilon
        rates, _ = balancer.allocate(
            {DYNAMIC: 30.0, STATIC: 30.0}, {s: 1000.0 for s in SERVERS}
        )
        assert rates["m1"][DYNAMIC] == pytest.approx(0.0, abs=1e-3)
        # Static load still flows to m1 at full share.
        assert rates["m1"][STATIC] == pytest.approx(7.5, rel=1e-3)

    def test_capacity_shared_across_classes(self, balancer):
        capacity = {s: 10.0 for s in SERVERS}
        rates, dropped = balancer.allocate(
            {DYNAMIC: 30.0, STATIC: 30.0}, capacity
        )
        for server in SERVERS:
            total = sum(rates[server].values())
            assert total <= 10.0 + 1e-6
        assert dropped == pytest.approx(20.0)

    def test_dynamic_served_first(self, balancer):
        capacity = {s: 10.0 for s in SERVERS}
        rates, _ = balancer.allocate({DYNAMIC: 40.0, STATIC: 40.0}, capacity)
        assert sum(r[DYNAMIC] for r in rates.values()) == pytest.approx(40.0)

    def test_unknown_server_or_class(self, balancer):
        with pytest.raises(ClusterError):
            balancer.set_weight("zz", DYNAMIC, 1.0)
        with pytest.raises(ClusterError):
            balancer.set_weight("m1", "video", 1.0)

    def test_conservation(self, balancer):
        offered = {DYNAMIC: 123.0, STATIC: 77.0}
        rates, dropped = balancer.allocate(
            offered, {s: 40.0 for s in SERVERS}
        )
        placed = sum(sum(r.values()) for r in rates.values())
        assert placed + dropped == pytest.approx(200.0)


class TestTwoStageFreon:
    def test_stage1_touches_only_dynamic(self, balancer):
        policy = TwoStageFreon(balancer)
        policy.observe("m1", 70.0, now=60.0)
        assert balancer.weight("m1", DYNAMIC) == pytest.approx(0.5)
        assert balancer.weight("m1", STATIC) == pytest.approx(1.0)
        assert policy.events[0].stage == 1

    def test_stage2_after_stage1_exhausted(self, balancer):
        policy = TwoStageFreon(balancer)
        for minute in range(6):  # halve dynamic 5 times -> below floor
            policy.observe("m1", 70.0, now=60.0 * minute)
        stages = [event.stage for event in policy.events]
        assert stages[:5] == [1] * 5
        assert stages[5] == 2
        assert balancer.weight("m1", STATIC) < 1.0

    def test_recovery_restores_static_then_dynamic(self, balancer):
        policy = TwoStageFreon(balancer)
        for minute in range(6):
            policy.observe("m1", 70.0, now=60.0 * minute)
        # Cool down: static restored first, then dynamic.
        for minute in range(6, 20):
            policy.observe("m1", 60.0, now=60.0 * minute)
        assert balancer.weight("m1", STATIC) == pytest.approx(1.0)
        assert balancer.weight("m1", DYNAMIC) == pytest.approx(1.0)
        restore_stages = [e.stage for e in policy.events if "restore" in e.action]
        assert restore_stages[0] == 2

    def test_quiet_in_hysteresis_band(self, balancer):
        policy = TwoStageFreon(balancer)
        policy.observe("m1", 65.0, now=60.0)  # between low and high
        assert policy.events == []

    def test_thresholds_validated(self, balancer):
        with pytest.raises(ClusterError):
            TwoStageFreon(balancer, high=60.0, low=65.0)

    def test_stage1_reduces_cpu_keeps_disk_throughput(self, balancer):
        # The functional claim of section 4.3: steering dynamic requests
        # away cools the CPU while the server keeps serving static files.
        mix = RequestMix()
        capacity = {s: 200.0 for s in SERVERS}
        offered = {DYNAMIC: 100.0, STATIC: 240.0}
        before_rates, _ = balancer.allocate(offered, capacity)
        before = classed_load(
            before_rates["m1"][DYNAMIC], before_rates["m1"][STATIC], mix
        )
        policy = TwoStageFreon(balancer)
        policy.observe("m1", 70.0, now=60.0)
        policy.observe("m1", 70.0, now=120.0)
        after_rates, _ = balancer.allocate(offered, capacity)
        after = classed_load(
            after_rates["m1"][DYNAMIC], after_rates["m1"][STATIC], mix
        )
        assert after.cpu_utilization < before.cpu_utilization * 0.75
        assert after.disk_utilization >= before.disk_utilization * 0.95
