"""The `repro top` dashboard renderer."""

from repro.telemetry import NULL_TELEMETRY, Telemetry


def test_render_empty_registry():
    telemetry = Telemetry()
    frame = telemetry.render()
    assert "repro top" in frame
    assert "(no metrics recorded yet)" in frame


def test_render_shows_all_sections_and_truncates(width=60):
    telemetry = Telemetry()
    telemetry.advance(600.0)
    telemetry.counter(
        "requests_total", {"machine": "a-very-long-machine-name"}
    ).inc(10)
    telemetry.counter("requests_total", {"machine": "m2"}).inc(30)
    telemetry.gauge("active_servers").set(4)
    telemetry.histogram("tick_seconds", buckets=(0.001, 0.01)).observe(0.002)
    telemetry.event("weight_adjust", "admd")
    frame = telemetry.render(width=width)
    assert all(len(line) <= width for line in frame.splitlines())
    assert "COUNTERS" in frame
    assert "GAUGES" in frame
    assert "HISTOGRAMS" in frame
    assert "requests_total" in frame
    assert "sim" in frame  # header carries the simulation clock


def test_render_null_telemetry():
    frame = NULL_TELEMETRY.render()
    assert "(no metrics recorded yet)" in frame
