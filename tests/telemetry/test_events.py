"""Event spans: discrete actions, periodic samples, duration capture."""

from repro.telemetry import Telemetry


def test_events_carry_both_clocks_and_attrs():
    telemetry = Telemetry()
    telemetry.advance(480.0)
    event = telemetry.event("fiddle_command", "fiddle", command="fiddle m1 ...")
    assert event.kind == "event"
    assert event.sim_time == 480.0
    assert event.wall_time > 0.0
    assert event.attrs == {"command": "fiddle m1 ..."}
    assert telemetry.events.events == [event]


def test_samples_store_value_in_attrs():
    telemetry = Telemetry()
    sample = telemetry.sample("cpu_temperature", 64.5, "cluster", machine="m1")
    assert sample.kind == "sample"
    assert sample.attrs == {"machine": "m1", "value": 64.5}


def test_span_records_duration_even_on_error():
    telemetry = Telemetry()
    with telemetry.span("recompile", "solver") as event:
        assert event.duration is None
    assert event.duration is not None and event.duration >= 0.0

    try:
        with telemetry.span("doomed", "solver") as failed:
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    # The span was appended on entry and its duration filled on unwind.
    assert failed.duration is not None
    assert [e.name for e in telemetry.events.events] == ["recompile", "doomed"]
