"""Tests for registry serialization and deterministic merging."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Registry, dump_registry, load_registry


def _registry(now=0.0):
    state = {"now": now}
    registry = Registry(lambda: state["now"])
    registry._clock_state = state  # test handle to move sim time
    return registry


class TestDumpRegistry:
    def test_dump_is_plain_and_sorted(self):
        registry = _registry()
        registry.counter("b_total", {"x": "1"}).inc(2.0)
        registry.counter("a_total").inc()
        registry.gauge("g").set(3.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        dump = dump_registry(registry)
        assert [f["name"] for f in dump] == ["a_total", "b_total", "g", "h"]
        hist = dump[-1]
        assert hist["bounds"] == [1.0, 2.0]
        assert hist["children"][0]["bucket_counts"] == [0, 1, 0]
        assert hist["children"][0]["sum"] == 1.5

    def test_dump_is_insertion_order_independent(self):
        a, b = _registry(), _registry()
        a.counter("x_total").inc()
        a.gauge("y", {"m": "1"}).set(2.0)
        b.gauge("y", {"m": "1"}).set(2.0)
        b.counter("x_total").inc()
        assert dump_registry(a) == dump_registry(b)

    def test_dump_excludes_wall_time(self):
        registry = _registry()
        registry.counter("c_total").inc()
        (family,) = dump_registry(registry)
        assert "wall_time" not in family["children"][0]


class TestLoadRegistry:
    def test_round_trip(self):
        source = _registry(now=7.0)
        source.counter("c_total", {"m": "1"}).inc(3.0)
        source.gauge("g").set(1.25)
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        target = _registry()
        load_registry(dump_registry(source), target)
        assert dump_registry(target) == dump_registry(source)

    def test_counters_accumulate(self):
        a, b = _registry(now=1.0), _registry(now=2.0)
        a.counter("c_total").inc(2.0)
        b.counter("c_total").inc(3.0)
        merged = _registry()
        load_registry(dump_registry(a), merged)
        load_registry(dump_registry(b), merged)
        assert merged.value("c_total") == 5.0
        (family,) = dump_registry(merged)
        assert family["children"][0]["sim_time"] == 2.0

    def test_gauges_keep_the_latest_sample(self):
        a, b = _registry(now=10.0), _registry(now=5.0)
        a.gauge("g").set(1.0)
        b.gauge("g").set(99.0)
        for order in ((a, b), (b, a)):
            merged = _registry()
            for source in order:
                load_registry(dump_registry(source), merged)
            assert merged.value("g") == 1.0  # newer sim_time wins

    def test_histograms_accumulate_buckets(self):
        a, b = _registry(), _registry()
        for registry, value in ((a, 0.5), (b, 1.5)):
            registry.histogram("h", buckets=(1.0, 2.0)).observe(value)
        merged = _registry()
        load_registry(dump_registry(a), merged)
        load_registry(dump_registry(b), merged)
        hist = merged.histogram("h", buckets=(1.0, 2.0))
        assert hist.bucket_counts == [1, 1, 0]
        assert hist.count == 2
        assert hist.sum == 2.0

    def test_histogram_bucket_mismatch_rejected(self):
        a, b = _registry(), _registry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        merged = _registry()
        load_registry(dump_registry(a), merged)
        with pytest.raises(TelemetryError, match="buckets"):
            load_registry(dump_registry(b), merged)

    def test_extra_labels_namespace_children(self):
        a, b = _registry(), _registry()
        a.counter("c_total").inc(1.0)
        b.counter("c_total").inc(2.0)
        merged = _registry()
        load_registry(dump_registry(a), merged, labels={"run": "a"})
        load_registry(dump_registry(b), merged, labels={"run": "b"})
        assert merged.value("c_total", {"run": "a"}) == 1.0
        assert merged.value("c_total", {"run": "b"}) == 2.0
        assert merged.total("c_total") == 3.0

    def test_extra_label_collision_rejected(self):
        source = _registry()
        source.counter("c_total", {"run": "inner"}).inc()
        with pytest.raises(TelemetryError, match="collides"):
            load_registry(dump_registry(source), _registry(),
                          labels={"run": "outer"})

    def test_unknown_kind_rejected(self):
        payload = [{
            "name": "m", "kind": "summary", "help": "",
            "children": [{"labels": [], "sim_time": 0.0, "value": 1.0}],
        }]
        with pytest.raises(TelemetryError, match="kind"):
            load_registry(payload, _registry())

    def test_merge_is_order_independent(self):
        shards = []
        for idx in range(3):
            registry = _registry(now=float(idx))
            registry.counter("c_total", {"m": "1"}).inc(idx + 1.0)
            registry.gauge("g").set(float(idx))
            registry.histogram("h", buckets=(1.0, 4.0)).observe(idx + 0.5)
            shards.append(dump_registry(registry))
        merged_forward = _registry()
        merged_reverse = _registry()
        for shard in shards:
            load_registry(shard, merged_forward)
        for shard in reversed(shards):
            load_registry(shard, merged_reverse)
        assert dump_registry(merged_forward) == dump_registry(merged_reverse)
