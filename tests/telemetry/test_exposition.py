"""Prometheus exposition round-trips and the JSONL stream."""

import io
import json

from repro.telemetry import Telemetry, parse_prometheus, dump_jsonl


def _populated_telemetry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.advance(120.0)
    telemetry.counter("requests_total", {"machine": "m1"}).inc(7)
    telemetry.counter("requests_total", {"machine": "m2"}).inc(3)
    telemetry.gauge("queue_depth", help="pending work").set(2.5)
    h = telemetry.histogram("tick_seconds", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.05, 1.0):
        h.observe(value)
    telemetry.event("weight_adjust", "admd", machine="m1", output=1.5)
    telemetry.sample("cpu_temperature", 61.2, "cluster", machine="m1")
    return telemetry


def test_round_trip_matches_registry_samples():
    telemetry = _populated_telemetry()
    text = telemetry.to_prometheus()
    parsed = parse_prometheus(text)
    expected = {
        (name, labels): value
        for name, labels, value in telemetry.registry.samples()
    }
    assert parsed == expected


def test_exposition_structure():
    text = _populated_telemetry().to_prometheus()
    lines = text.splitlines()
    assert "# TYPE requests_total counter" in lines
    assert "# HELP queue_depth pending work" in lines
    assert 'requests_total{machine="m1"} 7' in lines
    # Histogram expansion: cumulative buckets, +Inf last, then sum/count.
    assert 'tick_seconds_bucket{le="0.001"} 1' in lines
    assert 'tick_seconds_bucket{le="0.01"} 2' in lines
    assert 'tick_seconds_bucket{le="0.1"} 3' in lines
    assert 'tick_seconds_bucket{le="+Inf"} 4' in lines
    assert "tick_seconds_count 4" in lines


def test_label_values_escape_round_trip():
    telemetry = Telemetry()
    tricky = 'quote " backslash \\ newline \n done'
    telemetry.counter("odd_total", {"detail": tricky}).inc()
    parsed = parse_prometheus(telemetry.to_prometheus())
    assert parsed[("odd_total", (("detail", tricky),))] == 1


def test_jsonl_stream_carries_events_then_metrics():
    telemetry = _populated_telemetry()
    buffer = io.StringIO()
    rows = dump_jsonl(telemetry, buffer)
    lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert rows == len(lines)
    assert lines[0]["type"] == "event"
    assert lines[0]["name"] == "weight_adjust"
    assert lines[0]["sim_time"] == 120.0
    assert lines[1]["type"] == "sample"
    assert lines[1]["attrs"]["value"] == 61.2
    metric_rows = [row for row in lines if row["type"] == "metric"]
    assert {row["name"] for row in metric_rows} >= {
        "requests_total", "queue_depth", "tick_seconds_bucket",
        "tick_seconds_sum", "tick_seconds_count",
    }


def test_file_writers(tmp_path):
    telemetry = _populated_telemetry()
    jsonl = tmp_path / "out.jsonl"
    prom = tmp_path / "out.prom"
    rows = telemetry.write_jsonl(jsonl)
    telemetry.write_snapshot(prom)
    assert rows == len(jsonl.read_text().splitlines())
    assert parse_prometheus(prom.read_text()) == {
        (name, labels): value
        for name, labels, value in telemetry.registry.samples()
    }
