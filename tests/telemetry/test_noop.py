"""The disabled path must record nothing and allocate nothing per update.

This is the contract the compiled solver's throughput rests on: with no
telemetry wired, every producer holds the shared null singletons, and a
metric update is one no-op method call on a ``__slots__ = ()`` object.
``benchmarks/test_telemetry_overhead.py`` measures the wall-clock side;
these tests pin the structural guarantees.
"""

import tracemalloc
import types

from repro.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    ensure,
)
import repro.telemetry.registry as registry_module
from repro.telemetry.registry import NULL_METRIC, Registry


def test_ensure_returns_shared_singleton():
    assert ensure(None) is NULL_TELEMETRY
    enabled_like = object.__new__(NullTelemetry)
    assert ensure(enabled_like) is enabled_like
    assert not NULL_TELEMETRY.enabled


def test_null_metrics_are_one_shared_object():
    t = NULL_TELEMETRY
    assert t.counter("a_total") is NULL_METRIC
    assert t.gauge("b") is NULL_METRIC
    assert t.histogram("c", buckets=(1.0,)) is NULL_METRIC
    # Label sets don't fan out children on the null path.
    assert t.counter("a_total", {"machine": "m1"}) is NULL_METRIC


def test_null_registry_records_nothing():
    t = NULL_TELEMETRY
    t.counter("x_total").inc(100)
    t.gauge("y").set(3.0)
    t.histogram("z").observe(0.5)
    t.event("something", "here", detail=1)
    t.sample("series", 2.0)
    assert t.registry.families() == []
    assert list(t.registry.samples()) == []
    assert t.registry.value("x_total") == 0.0
    assert t.registry.total("x_total") == 0.0
    assert t.events.events == []
    assert t.to_prometheus() == ""


def test_null_updates_allocate_nothing():
    """Steady-state null-path updates perform zero allocations."""
    counter = NULL_TELEMETRY.counter("hot_total")
    gauge = NULL_TELEMETRY.gauge("hot")
    hist = NULL_TELEMETRY.histogram("hot_seconds")

    def hot_loop() -> None:
        for _ in range(1000):
            counter.inc()
            gauge.set(1.0)
            hist.observe(0.001)

    hot_loop()  # warm up (method cache, code objects)
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        hot_loop()
        after, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert after - before == 0


def test_null_span_is_reentrant_noop():
    with NULL_TELEMETRY.span("anything") as event:
        assert event is None


def test_enabled_updates_never_read_the_wall_clock(monkeypatch):
    """Metric updates must not syscall: wall time is stamped at read time.

    Per-update ``time.time()`` stamps made snapshot bytes nondeterministic
    (breaking sweep shard comparison) and cost a syscall on the solver's
    hot path, so ``wall_time`` is now a lazy property.
    """
    reads = {"n": 0}

    def counting_time() -> float:
        reads["n"] += 1
        return 1234.5

    fake_time = types.SimpleNamespace(time=counting_time)

    reg = Registry(clock=lambda: 42.0)
    counter = reg.counter("hot_total")
    gauge = reg.gauge("hot")
    hist = reg.histogram("hot_seconds", buckets=(0.1, 1.0))

    monkeypatch.setattr(registry_module, "time", fake_time)
    for _ in range(100):
        counter.inc()
        gauge.set(2.0)
        gauge.inc(0.5)
        gauge.dec(0.25)
        hist.observe(0.05)
    # Creating children must not stamp wall time either.
    reg.counter("hot_total", {"machine": "m1"}).inc()
    assert reads["n"] == 0

    # Simulation timestamps still advance per update.
    assert counter.sim_time == 42.0
    # The wall clock is stamped lazily, at the moment of the read.
    assert counter.wall_time == 1234.5
    assert gauge.wall_time == 1234.5
    assert hist.wall_time == 1234.5
    assert reads["n"] == 3
