"""Registry primitives: counters, gauges, histogram bucket semantics."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import Registry


def test_counter_accumulates_and_rejects_negative():
    registry = Registry()
    c = registry.counter("requests_total", help="requests")
    c.inc()
    c.inc(2.5)
    assert registry.value("requests_total") == pytest.approx(3.5)
    with pytest.raises(TelemetryError):
        c.inc(-1.0)


def test_counter_children_keyed_by_label_set():
    registry = Registry()
    a = registry.counter("hits_total", {"machine": "m1"})
    b = registry.counter("hits_total", {"machine": "m2"})
    assert a is not b
    # Same labels in any order resolve to the same child.
    c = registry.counter("hits_total", {"machine": "m1"})
    assert a is c
    a.inc(3)
    b.inc(1)
    assert registry.value("hits_total", {"machine": "m1"}) == 3
    assert registry.total("hits_total") == 4


def test_gauge_moves_both_ways():
    registry = Registry()
    g = registry.gauge("depth")
    g.set(4.0)
    g.dec()
    g.inc(0.5)
    assert registry.value("depth") == pytest.approx(3.5)


def test_kind_conflict_rejected():
    registry = Registry()
    registry.counter("x_total")
    with pytest.raises(TelemetryError):
        registry.gauge("x_total")


def test_invalid_metric_name_rejected():
    registry = Registry()
    with pytest.raises(TelemetryError):
        registry.counter("0bad-name")


def test_histogram_bucket_edges_are_inclusive():
    """An observation equal to a bound lands in that bucket (le semantics)."""
    registry = Registry()
    h = registry.histogram("lat", buckets=(0.1, 0.5, 1.0))
    h.observe(0.1)   # exactly on the first bound -> first bucket
    h.observe(0.100001)  # just past it -> second bucket
    h.observe(0.5)   # exactly on the second bound -> second bucket
    h.observe(2.0)   # past the last bound -> +Inf bucket
    assert h.bucket_counts == [1, 2, 0, 1]
    assert h.cumulative() == [1, 3, 3, 4]
    assert h.count == 4
    assert h.sum == pytest.approx(0.1 + 0.100001 + 0.5 + 2.0)


def test_histogram_quantile_and_mean():
    registry = Registry()
    h = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 0.6, 1.5, 3.0):
        h.observe(value)
    assert h.mean() == pytest.approx(5.6 / 4)
    assert h.quantile(0.5) == 1.0   # 2 of 4 observations at or below 1.0
    assert h.quantile(1.0) == 4.0
    h.observe(100.0)
    assert h.quantile(1.0) == float("inf")
    with pytest.raises(TelemetryError):
        h.quantile(1.5)


def test_histogram_redeclared_buckets_rejected():
    registry = Registry()
    registry.histogram("lat", buckets=(1.0, 2.0))
    # Same buckets: fine (get-or-create).
    registry.histogram("lat", buckets=(2.0, 1.0))
    with pytest.raises(TelemetryError):
        registry.histogram("lat", buckets=(1.0, 2.0, 3.0))


def test_sim_clock_stamps_updates():
    now = {"t": 0.0}
    registry = Registry(clock=lambda: now["t"])
    c = registry.counter("ticks_total")
    now["t"] = 42.0
    c.inc()
    assert c.sim_time == 42.0
    assert c.wall_time > 0.0
