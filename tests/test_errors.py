"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_branch_structure(self):
        assert issubclass(errors.UnknownNodeError, errors.GraphError)
        assert issubclass(errors.DuplicateNodeError, errors.GraphError)
        assert issubclass(errors.AirFlowConservationError, errors.GraphError)
        assert issubclass(errors.MdotSyntaxError, errors.MdotError)
        assert issubclass(errors.MdotSemanticError, errors.MdotError)
        assert issubclass(errors.UnknownSensorError, errors.SolverError)
        assert issubclass(errors.SensorClosedError, errors.SensorError)
        assert issubclass(errors.ServerStateError, errors.ClusterError)

    def test_messages_carry_context(self):
        err = errors.UnknownNodeError("CPU Air")
        assert "CPU Air" in str(err)
        assert err.name == "CPU Air"

        err = errors.AirFlowConservationError("Inlet", 0.5)
        assert "Inlet" in str(err) and "0.5" in str(err)

        err = errors.MdotSyntaxError("bad token", 3, 7)
        assert "line 3" in str(err)
        assert (err.line, err.column) == (3, 7)

        err = errors.UnknownSensorError("machine1", "warp")
        assert "machine1" in str(err) and "warp" in str(err)

    def test_catching_the_base_class_works(self):
        from repro.config.layouts import validation_machine
        from repro.core.solver import Solver

        solver = Solver([validation_machine()], record=False)
        with pytest.raises(errors.ReproError):
            solver.temperature("machine1", "nonexistent node")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_exports_resolve(self):
        import repro.cluster
        import repro.config
        import repro.core
        import repro.daemons
        import repro.fiddle
        import repro.freon
        import repro.machine
        import repro.mdot
        import repro.reference
        import repro.sensors

        for module in (
            repro.cluster,
            repro.config,
            repro.core,
            repro.daemons,
            repro.fiddle,
            repro.freon,
            repro.machine,
            repro.mdot,
            repro.reference,
            repro.sensors,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_lazy_exports_raise_on_unknown(self):
        import repro.cluster
        import repro.freon

        with pytest.raises(AttributeError):
            repro.cluster.does_not_exist
        with pytest.raises(AttributeError):
            repro.freon.does_not_exist
