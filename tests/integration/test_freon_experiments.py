"""Integration: the section 5 Freon experiments, full length.

These are the actual Figure 11 / Figure 12 runs (2000 simulated seconds,
four machines).  Each takes under a second of wall-clock time.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1


@pytest.fixture(scope="module")
def freon_run():
    sim = ClusterSimulation(policy="freon", fiddle_script=emergency_script())
    return sim, sim.run(2000)


@pytest.fixture(scope="module")
def traditional_run():
    sim = ClusterSimulation(
        policy="traditional", fiddle_script=emergency_script()
    )
    return sim, sim.run(2000)


@pytest.fixture(scope="module")
def ec_run():
    sim = ClusterSimulation(policy="freon-ec", fiddle_script=emergency_script())
    return sim, sim.run(2000)


class TestFigure11Freon:
    def test_no_requests_dropped(self, freon_run):
        _, result = freon_run
        assert result.drop_fraction == 0.0

    def test_hot_machines_adjusted(self, freon_run):
        _, result = freon_run
        adjusted = {machine for _, machine, _ in result.adjustments}
        assert "machine1" in adjusted
        assert "machine3" in adjusted
        # The healthy machines are never restricted.
        assert "machine2" not in adjusted
        assert "machine4" not in adjusted

    def test_temperatures_held_near_threshold(self, freon_run):
        # "Freon kept the temperature of the CPUs affected by the thermal
        # emergencies just under T_h" — small transient overshoot between
        # one-minute observations is inherent to the design.
        _, result = freon_run
        for machine in ("machine1", "machine3"):
            peak = result.max_temperature(machine)
            assert peak < table1.T_HIGH_CPU + 1.0
            assert peak < table1.T_RED_CPU  # never red-lines

    def test_healthy_machines_absorb_extra_load(self, freon_run):
        _, result = freon_run
        assert max(result.series("machine2", "cpu_utilization")) > 0.70
        assert result.max_temperature("machine2") < table1.T_HIGH_CPU

    def test_no_server_turned_off(self, freon_run):
        _, result = freon_run
        assert result.redlined == []
        assert all(r.active_servers == 4 for r in result.records)

    def test_releases_after_load_subsides(self, freon_run):
        _, result = freon_run
        released = {machine for _, machine in result.releases}
        assert released == {"machine1", "machine3"}

    def test_crossing_order_m1_before_m3(self, freon_run):
        # m1's emergency is hotter (38.6 vs 35.6), so it crosses first.
        _, result = freon_run
        first_m1 = min(t for t, m, _ in result.adjustments if m == "machine1")
        first_m3 = min(t for t, m, _ in result.adjustments if m == "machine3")
        assert first_m1 < first_m3


class TestSection51Traditional:
    def test_servers_shut_down(self, traditional_run):
        _, result = traditional_run
        killed = [s.machine for s in result.shutdowns]
        assert killed == ["machine1", "machine3"]

    def test_requests_dropped(self, traditional_run):
        # The paper lost 14% of the trace; our substrate loses the same
        # order (several percent) — and strictly more than Freon's zero.
        _, result = traditional_run
        assert result.drop_fraction > 0.03

    def test_survivors_saturate(self, traditional_run):
        _, result = traditional_run
        assert max(result.series("machine2", "cpu_utilization")) > 0.95

    def test_dead_machines_cool_down(self, traditional_run):
        _, result = traditional_run
        final = result.records[-1].servers["machine1"].cpu_temperature
        assert final < 45.0


class TestFigure12FreonEC:
    def test_no_requests_dropped(self, ec_run):
        _, result = ec_run
        assert result.drop_fraction == 0.0

    def test_shrinks_to_one_server_in_valley(self, ec_run):
        # "During the periods of light load, Freon-EC is capable of
        # reducing the active configuration to a single server, as it did
        # at 60 seconds."
        _, result = ec_run
        active = result.active_series()
        assert min(active[:300]) == 1

    def test_grows_back_to_full_at_peak(self, ec_run):
        _, result = ec_run
        peak_window = [r.active_servers for r in result.records
                       if 1100 <= r.time <= 1500]
        assert max(peak_window) == 4

    def test_off_machines_cool_substantially(self, ec_run):
        # "During the time the machines were off, they cooled down
        # substantially (by about 10 C ...)".
        _, result = ec_run
        cooled = 0
        for machine in ("machine2", "machine3", "machine4"):
            series = result.series(machine, "cpu_temperature")
            if max(series[:120]) - min(series[:900]) > 8.0:
                cooled += 1
        assert cooled >= 1

    def test_shrinks_again_after_peak(self, ec_run):
        _, result = ec_run
        assert result.records[-1].active_servers < 4

    def test_emergencies_handled_by_base_policy_at_peak(self, ec_run):
        # "At the peak load ... machines 1 and 3 again crossed T_h, being
        # handled correctly by the base thermal policy."
        _, result = ec_run
        adjusted = {m for _, m, _ in result.adjustments}
        assert adjusted & {"machine1", "machine3"}
        for machine in ("machine1", "machine3"):
            assert result.max_temperature(machine) < table1.T_RED_CPU

    def test_reconfiguration_events_logged(self, ec_run):
        _, result = ec_run
        actions = {(e.action) for e in result.ec_events}
        assert actions == {"on", "off"}
