"""Integration: emulating a large cluster from one replicated trace.

Section 2.2: "replicating these traces allows Mercury to emulate large
cluster installations, even when the user's real system is much
smaller."  One recorded utilization trace is replicated onto 16
machines behind a single AC; the emulation must stay fast, keep the
identical machines identical, and aggregate their heat at the cluster
level.
"""

import time

import pytest

from repro.config import table1
from repro.config.layouts import validation_cluster
from repro.core.solver import Solver
from repro.core.trace import TracePoint, UtilizationTrace, run_offline

MACHINES = [f"node{i:02d}" for i in range(16)]


@pytest.fixture(scope="module")
def big_history():
    cluster = validation_cluster(machine_names=MACHINES)
    base = UtilizationTrace(
        "recorded",
        [
            TracePoint(0.0, {table1.CPU: 0.2, table1.DISK_PLATTERS: 0.1}),
            TracePoint(300.0, {table1.CPU: 0.9, table1.DISK_PLATTERS: 0.5}),
            TracePoint(900.0, {table1.CPU: 0.4, table1.DISK_PLATTERS: 0.2}),
        ],
    )
    traces = base.replicate(MACHINES)
    start = time.perf_counter()
    history = run_offline(
        list(cluster.machines.values()), traces, cluster=cluster,
        duration=1200.0,
    )
    elapsed = time.perf_counter() - start
    return history, elapsed


class TestLargeClusterEmulation:
    def test_all_machines_emulated(self, big_history):
        history, _ = big_history
        assert set(history.machines()) == set(MACHINES)
        assert len(history.times(MACHINES[0])) == 1201

    def test_replicas_stay_identical(self, big_history):
        history, _ = big_history
        finals = [
            history.last(machine).temperatures[table1.CPU]
            for machine in MACHINES
        ]
        assert max(finals) - min(finals) < 1e-9

    def test_load_pattern_visible_in_temperatures(self, big_history):
        history, _ = big_history
        series = history.series(MACHINES[0], table1.CPU)
        times = history.times(MACHINES[0])
        during_peak = series[times.index(800.0)]
        at_start = series[times.index(60.0)]
        assert during_peak > at_start + 10.0

    def test_wall_clock_practical(self, big_history):
        # 16 machines x 1200 emulated seconds should take seconds, not
        # minutes — that is what makes large-installation studies viable.
        _, elapsed = big_history
        assert elapsed < 30.0

    def test_machines_share_the_ac_supply(self, big_history):
        history, _ = big_history
        for machine in MACHINES[:4]:
            inlet = history.last(machine).temperatures[table1.INLET]
            assert inlet == pytest.approx(table1.INLET_TEMPERATURE, abs=1e-6)
