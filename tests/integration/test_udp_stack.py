"""Integration: the full Mercury UDP deployment of Figure 2.

A simulated server, a monitord pushing 128-byte utilization datagrams to
the solver over a real localhost socket, and an application reading
temperatures through opensensor()/readsensor() — all stitched together.
"""

import time

import pytest

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.solver import Solver
from repro.daemons.monitord import Monitord
from repro.machine.server import SimulatedServer
from repro.machine.workloads import ConstantWorkload
from repro.sensors.api import SensorConnection
from repro.sensors.server import SensorService, UdpSensorServer


@pytest.fixture
def stack():
    layout = validation_machine()
    solver = Solver([layout], record=False)
    service = SensorService(solver, aliases=table1.sensor_map())
    machine = SimulatedServer(
        layout,
        workload=ConstantWorkload({table1.CPU: 1.0, table1.DISK_PLATTERS: 0.5}),
        seed=1,
    )
    return layout, solver, service, machine


def _wait_for(predicate, timeout=3.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestFullUdpStack:
    def test_monitord_to_solver_to_sensor(self, stack):
        layout, solver, service, machine = stack
        with UdpSensorServer(service) as udp:
            with Monitord("machine1", machine, udp.address) as daemon:
                # Simulated minute: machine runs hot, daemon reports.
                for _ in range(60):
                    machine.step(1.0)
                    daemon.tick(1.0)
                assert _wait_for(
                    lambda: service.solver.machine("machine1").utilizations[
                        table1.CPU
                    ]
                    > 0.9
                )
                # Solver advances the emulation with the reported load.
                service.step(3000)
                with SensorConnection(
                    udp.address[0], udp.address[1], component="cpu"
                ) as sensor:
                    temperature = sensor.read()
        assert temperature > 55.0

    def test_emulated_matches_direct_feed(self, stack):
        # The UDP path must produce the same temperatures as feeding the
        # solver directly (modulo the one-interval reporting delay).
        layout, solver, service, machine = stack
        with UdpSensorServer(service) as udp:
            with Monitord("machine1", machine, udp.address) as daemon:
                for _ in range(10):
                    machine.step(1.0)
                    daemon.tick(1.0)
                _wait_for(
                    lambda: service.solver.machine("machine1").utilizations[
                        table1.CPU
                    ]
                    > 0.9
                )
                service.step(2000)
                via_udp = service.read_temperature("machine1", "cpu")

        direct_solver = Solver([layout], record=False)
        direct_solver.set_utilization("machine1", table1.CPU, 1.0)
        direct_solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.5)
        direct_solver.run(2000)
        direct = direct_solver.temperature("machine1", table1.CPU)
        assert via_udp == pytest.approx(direct, abs=0.5)

    def test_sensor_latency_budget(self, stack):
        # readsensor() over UDP should beat the 500 us SCSI in-disk
        # sensor by a comfortable margin on localhost... but CI machines
        # jitter, so assert only a generous bound and a sane median.
        import statistics

        layout, solver, service, machine = stack
        with UdpSensorServer(service) as udp:
            with SensorConnection(
                udp.address[0], udp.address[1], component="disk"
            ) as sensor:
                sensor.read()  # warm up
                samples = []
                for _ in range(50):
                    start = time.perf_counter()
                    sensor.read()
                    samples.append(time.perf_counter() - start)
        median = statistics.median(samples)
        assert median < 0.01  # 10 ms ceiling; typical is tens of us
