"""Integration: the full section 3.1 pipeline on shortened runs.

Calibrate Mercury against microbenchmark recordings of the simulated
physical machine, then validate on the mixed benchmark without touching
the inputs — the trend-tracking accuracy claim, end to end.
"""

import numpy as np
import pytest

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.calibration import (
    calibrate,
    compare,
    emulate,
    measure_run,
    smooth_series,
)
from repro.machine.server import SimulatedServer
from repro.machine.workloads import (
    MixedBenchmark,
    cpu_microbenchmark,
    disk_microbenchmark,
)

SEED = 11  # one physical machine: same seed for every run on it


@pytest.fixture(scope="module")
def pipeline():
    layout = validation_machine()
    cpu_server = SimulatedServer(
        layout,
        workload=cpu_microbenchmark(
            levels=(0.3, 0.7, 1.0), busy_length=900.0, idle_length=500.0
        ),
        seed=SEED,
    )
    cpu_run = measure_run(cpu_server, duration=4200.0, interval=1.0)
    disk_server = SimulatedServer(
        layout,
        workload=disk_microbenchmark(
            levels=(0.4, 0.8, 1.0), busy_length=900.0, idle_length=500.0
        ),
        seed=SEED,
    )
    disk_run = measure_run(disk_server, duration=4200.0, interval=1.0)
    fit = calibrate(layout, [cpu_run, disk_run], dt=5.0)
    return layout, fit, cpu_run, disk_run


class TestCalibrationPhase:
    def test_fit_residual_small(self, pipeline):
        _, fit, _, _ = pipeline
        assert fit.rmse < 0.6

    def test_fitted_constants_positive_and_sane(self, pipeline):
        _, fit, _, _ = pipeline
        for (a, b), k in fit.k_overrides.items():
            assert 0.005 < k < 50.0, (a, b)

    def test_calibration_runs_track_measurements(self, pipeline):
        layout, fit, cpu_run, _ = pipeline
        emulated = emulate(layout, cpu_run, k_overrides=fit.k_overrides, dt=1.0)
        report = compare(
            {n: smooth_series(s) for n, s in cpu_run.temperatures.items()},
            emulated,
            warmup=120,
        )
        rmse, max_err = report[table1.CPU_AIR]
        assert max_err < 1.0


class TestValidationPhase:
    """Figures 7-8: a different benchmark, no input adjustments."""

    @pytest.fixture(scope="class")
    def validation(self, pipeline):
        layout, fit, _, _ = pipeline
        server = SimulatedServer(
            layout, workload=MixedBenchmark(duration=2500.0), seed=SEED
        )
        run = measure_run(server, duration=2500.0, interval=1.0)
        emulated = emulate(layout, run, k_overrides=fit.k_overrides, dt=1.0)
        return run, emulated

    def test_cpu_air_within_one_degree(self, pipeline, validation):
        run, emulated = validation
        smoothed = smooth_series(run.temperatures[table1.CPU_AIR])
        err = np.abs(
            np.asarray(smoothed[120:]) - np.asarray(emulated[table1.CPU_AIR][120:])
        )
        assert err.max() < 1.0

    def test_disk_within_one_degree(self, pipeline, validation):
        run, emulated = validation
        smoothed = smooth_series(run.temperatures[table1.DISK_PLATTERS])
        err = np.abs(
            np.asarray(smoothed[120:])
            - np.asarray(emulated[table1.DISK_PLATTERS][120:])
        )
        assert err.max() < 1.0

    def test_trend_correlation(self, pipeline, validation):
        # Trend-accuracy: the emulated and measured series must be
        # strongly correlated, not just close on average.
        run, emulated = validation
        for node in (table1.CPU_AIR, table1.DISK_PLATTERS):
            a = np.asarray(smooth_series(run.temperatures[node])[120:])
            b = np.asarray(emulated[node][120:])
            assert np.corrcoef(a, b)[0, 1] > 0.98

    def test_calibration_beats_nominal_inputs(self, pipeline, validation):
        layout, fit, _, _ = pipeline
        run, emulated = validation
        nominal = emulate(layout, run, dt=1.0)
        for node in (table1.CPU_AIR,):
            smoothed = np.asarray(smooth_series(run.temperatures[node])[120:])
            fitted_err = np.abs(
                smoothed - np.asarray(emulated[node][120:])
            ).max()
            nominal_err = np.abs(
                smoothed - np.asarray(nominal[node][120:])
            ).max()
            assert fitted_err <= nominal_err + 0.05
