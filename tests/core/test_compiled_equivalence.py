"""Property-based equivalence: compiled engine vs the reference engine.

Seeded generators build random machine layouts (chains with bypass
splits, stagnant air pockets, region-region heat edges, mixed
linear/constant/table power models) and random clusters with
recirculation, then drive a ``python`` and a ``compiled`` solver with
identical utilization schedules and mid-run fiddle storms — forced
temperatures (including inlet overrides), constant changes, air-flow
edits, machine power-off — and demand node-for-node agreement within
1e-9 C after every tick.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiled import have_numpy
from repro.core.graph import (
    AirEdge,
    AirRegion,
    ClusterAirEdge,
    ClusterLayout,
    Component,
    CoolingSource,
    HeatEdge,
    MachineLayout,
)
from repro.core.power import (
    ConstantPowerModel,
    LinearPowerModel,
    TablePowerModel,
)
from repro.core.solver import Solver

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="compiled engine needs numpy"
)

TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------


def _random_power_model(rng):
    kind = rng.randrange(3)
    if kind == 0:
        p_base = round(rng.uniform(0.0, 10.0), 2)
        return LinearPowerModel(p_base, p_base + round(rng.uniform(0.0, 40.0), 2))
    if kind == 1:
        return ConstantPowerModel(round(rng.uniform(0.5, 20.0), 2))
    n_knees = rng.randrange(1, 4)
    knees = sorted(round(rng.uniform(0.05, 0.95), 3) for _ in range(n_knees))
    power = round(rng.uniform(0.0, 5.0), 2)
    points = [(0.0, power)]
    for knee in knees:
        if knee <= points[-1][0]:
            continue
        power = round(power + rng.uniform(0.5, 15.0), 2)
        points.append((knee, power))
    points.append((1.0, round(power + rng.uniform(0.5, 10.0), 2)))
    return TablePowerModel(points)


def random_machine(rng, name):
    """A random valid layout: air chain + bypass split + stagnant pocket."""
    n_regions = rng.randrange(3, 7)
    regions = [f"air{i}" for i in range(n_regions)]
    air_edges = []
    for i in range(n_regions - 1):
        if i + 2 < n_regions and rng.random() < 0.4:
            target = rng.randrange(i + 2, n_regions)
            fraction = round(rng.uniform(0.1, 0.9), 3)
            air_edges.append(AirEdge(regions[i], regions[i + 1], fraction))
            air_edges.append(
                AirEdge(regions[i], regions[target], 1.0 - fraction)
            )
        else:
            air_edges.append(AirEdge(regions[i], regions[i + 1], 1.0))
    if rng.random() < 0.5:
        # A stagnant pocket: fed by a zero-fraction edge, so no air mass
        # moves through it (the masked stream-exchange path).
        pocket = "pocket"
        air_edges.append(AirEdge(regions[0], pocket, 0.0))
        air_edges.append(AirEdge(pocket, regions[-1], 1.0))
        regions.append(pocket)

    n_components = rng.randrange(1, 5)
    components = []
    heat_edges = []
    for c in range(n_components):
        comp = f"comp{c}"
        components.append(
            Component(
                name=comp,
                mass=round(rng.uniform(0.05, 2.0), 3),
                specific_heat=round(rng.uniform(400.0, 1500.0), 1),
                power_model=_random_power_model(rng),
                monitored=True,
            )
        )
        region = regions[rng.randrange(1, n_regions)]
        heat_edges.append(
            HeatEdge(comp, region, round(rng.uniform(0.1, 8.0), 3))
        )
    if n_components >= 2 and rng.random() < 0.6:
        heat_edges.append(
            HeatEdge("comp0", "comp1", round(rng.uniform(0.05, 2.0), 3))
        )
    if rng.random() < 0.4:
        # Region-region conduction (the air-air path in the compiled plan).
        a, b = rng.sample(regions[: n_regions], 2)
        heat_edges.append(HeatEdge(a, b, round(rng.uniform(0.05, 1.0), 3)))

    return MachineLayout(
        name=name,
        components=components,
        air_regions=[AirRegion(r) for r in regions],
        heat_edges=heat_edges,
        air_edges=air_edges,
        inlet=regions[0],
        exhaust=regions[n_regions - 1],
        inlet_temperature=round(rng.uniform(15.0, 35.0), 1),
        fan_cfm=round(rng.uniform(5.0, 80.0), 1),
    )


def random_cluster(rng, identical=False):
    """A random cluster with recirculation between machines.

    With ``identical=True`` every machine shares one layout shape (one
    compiled batch group); otherwise each machine gets its own random
    layout (one group per machine).
    """
    n_machines = rng.randrange(2, 5)
    names = [f"m{i}" for i in range(n_machines)]
    if identical:
        shape_seed = rng.randrange(10**6)
        machines = [
            random_machine(random.Random(shape_seed), name) for name in names
        ]
    else:
        machines = [random_machine(rng, name) for name in names]
    shares = [rng.uniform(0.2, 1.0) for _ in names]
    total = sum(shares)
    edges = [
        ClusterAirEdge("AC", name, share / total)
        for name, share in zip(names, shares)
    ]
    for i, name in enumerate(names):
        if n_machines > 1 and rng.random() < 0.6:
            # Part of this machine's exhaust recirculates to a peer.
            peer = names[(i + 1 + rng.randrange(n_machines - 1)) % n_machines]
            if peer != name:
                recirc = round(rng.uniform(0.05, 0.4), 3)
                edges.append(ClusterAirEdge(name, peer, recirc))
                edges.append(ClusterAirEdge(name, "exhaust", 1.0 - recirc))
                continue
        edges.append(ClusterAirEdge(name, "exhaust", 1.0))
    return ClusterLayout(
        machines=machines,
        sources=[CoolingSource("AC", round(rng.uniform(15.0, 25.0), 1))],
        edges=edges,
        sinks=["exhaust"],
    )


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def _pair(layouts, cluster=None, dt=1.0):
    return (
        Solver(layouts, cluster=cluster, dt=dt, record=False, engine="python"),
        Solver(layouts, cluster=cluster, dt=dt, record=False, engine="compiled"),
    )


def _assert_equal(reference, compiled, context=""):
    for name, ref_state in reference.machines.items():
        comp_state = compiled.machines[name]
        for node, expected in ref_state.temperatures.items():
            actual = comp_state.temperatures[node]
            assert abs(actual - expected) <= TOLERANCE, (
                f"{context}: machine {name!r} node {node!r}: "
                f"compiled={actual!r} python={expected!r}"
            )


def _random_utilizations(rng, solver):
    for name, state in solver.machines.items():
        for component in state.layout.components:
            yield name, component, round(rng.uniform(0.0, 1.0), 3)


def _fiddle_storm(rng, reference, compiled):
    """Apply 1-3 random identical mutations to both solvers."""
    solvers = (reference, compiled)
    names = list(reference.machines)
    for _ in range(rng.randrange(1, 4)):
        name = rng.choice(names)
        state = reference.machine(name)
        layout = state.layout
        action = rng.randrange(8)
        if action == 0:  # force a node temperature (components or air)
            node = rng.choice(list(state.temperatures))
            value = round(rng.uniform(10.0, 90.0), 2)
            for s in solvers:
                s.force_temperature(name, node, value)
        elif action == 1:  # inlet override (an emergency)
            value = round(rng.uniform(25.0, 45.0), 2)
            for s in solvers:
                s.force_temperature(name, layout.inlet, value)
        elif action == 2:  # conductance change
            edge = rng.choice(layout.heat_edges)
            value = round(rng.uniform(0.01, 10.0), 3)
            for s in solvers:
                s.machine(name).set_k(edge.a, edge.b, value)
        elif action == 3:  # air-flow fraction change (may strand air)
            edge = rng.choice(layout.air_edges)
            value = round(rng.uniform(0.0, 1.0), 3)
            for s in solvers:
                s.machine(name).set_fraction(edge.src, edge.dst, value)
        elif action == 4:  # fan speed change
            value = round(rng.uniform(1.0, 100.0), 1)
            for s in solvers:
                s.machine(name).set_fan_cfm(value)
        elif action == 5:  # power off (scale 0) or DVFS throttle
            component = rng.choice(list(layout.components))
            factor = rng.choice([0.0, round(rng.uniform(0.2, 1.0), 2)])
            for s in solvers:
                s.machine(name).set_power_scale(component, factor)
        elif action == 6:  # clear any inlet override
            for s in solvers:
                s.clear_inlet_override(name)
        else:  # cluster-level edits (no-ops without a cluster)
            if reference.cluster is None:
                continue
            if rng.random() < 0.5:
                source = rng.choice(list(reference.cluster.sources))
                value = round(rng.uniform(12.0, 30.0), 2)
                for s in solvers:
                    s.set_source_temperature(source, value)
            else:
                edge = rng.choice(reference.cluster.edges)
                value = round(rng.uniform(0.0, 1.0), 3)
                for s in solvers:
                    s.set_cluster_fraction(edge.src, edge.dst, value)


def _run_equivalence(rng, reference, compiled, ticks, storm=True):
    _assert_equal(reference, compiled, "initial state")
    for tick in range(ticks):
        if rng.random() < 0.7:
            for name, component, value in _random_utilizations(rng, reference):
                reference.set_utilization(name, component, value)
                compiled.set_utilization(name, component, value)
        if storm and rng.random() < 0.3:
            _fiddle_storm(rng, reference, compiled)
        reference.step()
        compiled.step()
        _assert_equal(reference, compiled, f"tick {tick}")


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_single_machine_equivalence(seed):
    rng = random.Random(seed)
    layout = random_machine(rng, "random")
    reference, compiled = _pair([layout])
    _run_equivalence(rng, reference, compiled, ticks=40, storm=False)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_single_machine_fiddle_storm_equivalence(seed):
    rng = random.Random(seed)
    layout = random_machine(rng, "random")
    reference, compiled = _pair([layout])
    _run_equivalence(rng, reference, compiled, ticks=40, storm=True)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_cluster_equivalence_identical_layouts(seed):
    """All machines share one shape: exercises the batched (2D) path."""
    rng = random.Random(seed)
    cluster = random_cluster(rng, identical=True)
    layouts = list(cluster.machines.values())
    reference, compiled = _pair(layouts, cluster=cluster)
    _run_equivalence(rng, reference, compiled, ticks=30, storm=True)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_cluster_equivalence_mixed_layouts(seed):
    """Every machine has its own shape: one compiled group per machine."""
    rng = random.Random(seed)
    cluster = random_cluster(rng, identical=False)
    layouts = list(cluster.machines.values())
    reference, compiled = _pair(layouts, cluster=cluster)
    _run_equivalence(rng, reference, compiled, ticks=30, storm=True)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), dt=st.sampled_from([0.25, 1.0, 5.0]))
def test_equivalence_across_dt(seed, dt):
    rng = random.Random(seed)
    layout = random_machine(rng, "random")
    reference, compiled = _pair([layout], dt=dt)
    _run_equivalence(rng, reference, compiled, ticks=25, storm=True)
