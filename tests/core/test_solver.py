"""Tests for the Mercury solver: physics sanity, queries, cluster mode."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.config import table1
from repro.config.layouts import (
    recirculating_cluster,
    validation_cluster,
    validation_machine,
)
from repro.core.solver import Solver
from repro.errors import SolverError, UnknownSensorError
from tests.conftest import make_tiny_layout


def steady(solver, machine, node, duration=8000):
    solver.run(duration)
    return solver.temperature(machine, node)


class TestConstruction:
    def test_requires_layouts(self):
        with pytest.raises(SolverError):
            Solver([])

    def test_requires_positive_dt(self, layout):
        with pytest.raises(SolverError):
            Solver([layout], dt=0.0)

    def test_duplicate_machine_names(self):
        with pytest.raises(SolverError):
            Solver([make_tiny_layout("m"), make_tiny_layout("m")])

    def test_cluster_machine_mismatch(self, layout):
        cluster = validation_cluster()
        with pytest.raises(SolverError):
            Solver([layout], cluster=cluster)

    def test_initial_temperature_default(self, layout):
        solver = Solver([layout])
        assert solver.temperature("machine1", table1.CPU) == pytest.approx(
            table1.INLET_TEMPERATURE
        )

    def test_initial_temperature_explicit(self, layout):
        solver = Solver([layout], initial_temperature=30.0)
        assert solver.temperature("machine1", table1.EXHAUST) == 30.0


class TestQueries:
    def test_unknown_machine(self, solver):
        with pytest.raises(UnknownSensorError):
            solver.temperature("machine9", table1.CPU)

    def test_unknown_node(self, solver):
        with pytest.raises(UnknownSensorError):
            solver.temperature("machine1", "Flux Capacitor")

    def test_special_inlet_exhaust_names(self, solver):
        assert solver.temperature("machine1", "inlet") == pytest.approx(21.6)
        assert solver.temperature("machine1", "exhaust") == pytest.approx(21.6)

    def test_case_insensitive_node_names(self, solver):
        assert solver.temperature("machine1", "cpu") == solver.temperature(
            "machine1", table1.CPU
        )

    def test_set_utilization_validates(self, solver):
        with pytest.raises(ValueError):
            solver.set_utilization("machine1", table1.CPU, 2.0)


class TestThermalBehaviour:
    def test_idle_steady_state_above_inlet(self, solver):
        # Even idle, the components dissipate Pbase and must sit above
        # the inlet temperature.
        temp = steady(solver, "machine1", table1.CPU)
        assert temp > table1.INLET_TEMPERATURE + 5.0

    def test_utilization_monotone_in_temperature(self, layout):
        temps = []
        for u in (0.0, 0.5, 1.0):
            solver = Solver([layout], record=False)
            solver.set_utilization("machine1", table1.CPU, u)
            temps.append(steady(solver, "machine1", table1.CPU, 6000))
        assert temps[0] < temps[1] < temps[2]

    def test_full_load_cpu_range(self, layout):
        # Shape check: a fully loaded CPU should land in the 55-75 C
        # band the paper's figures show, not 30 or 200.
        solver = Solver([layout], record=False)
        solver.set_utilization("machine1", table1.CPU, 1.0)
        temp = steady(solver, "machine1", table1.CPU, 6000)
        assert 55.0 < temp < 75.0

    def test_exhaust_carries_total_heat(self, layout):
        # Energy balance: at steady state the exhaust-inlet enthalpy
        # difference must equal total dissipated power.
        solver = Solver([layout], record=False)
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.set_utilization("machine1", table1.DISK_PLATTERS, 1.0)
        solver.run(20000)
        state = solver.machine("machine1")
        total_power = sum(state.power(c) for c in state.layout.components)
        capacity_rate = units.air_heat_capacity_rate(
            units.cfm_to_m3s(table1.FAN_CFM)
        )
        rise = solver.temperature("machine1", "exhaust") - solver.temperature(
            "machine1", "inlet"
        )
        assert rise * capacity_rate == pytest.approx(total_power, rel=0.02)

    def test_air_temperatures_bounded_by_sources(self, solver):
        # No air region can be hotter than the hottest component or
        # colder than the inlet.
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.set_utilization("machine1", table1.DISK_PLATTERS, 1.0)
        solver.run(5000)
        state = solver.machine("machine1")
        hottest = max(
            state.temperatures[c] for c in state.layout.components
        )
        for region in state.layout.air_regions:
            temp = state.temperatures[region]
            assert table1.INLET_TEMPERATURE - 1e-6 <= temp <= hottest + 1e-6

    def test_cooling_after_load_removed(self, solver):
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.run(4000)
        hot = solver.temperature("machine1", table1.CPU)
        solver.set_utilization("machine1", table1.CPU, 0.0)
        solver.run(4000)
        cool = solver.temperature("machine1", table1.CPU)
        assert cool < hot - 10.0

    def test_determinism(self, layout):
        def run():
            solver = Solver([layout], record=False)
            solver.set_utilization("machine1", table1.CPU, 0.7)
            solver.run(500)
            return solver.temperature("machine1", table1.CPU)

        assert run() == run()

    def test_dt_refinement_consistency(self, layout):
        # Halving dt should barely change the trajectory (the solver is
        # numerically convergent at its default step).
        results = []
        for dt in (1.0, 0.5):
            solver = Solver([layout], dt=dt, record=False)
            solver.set_utilization("machine1", table1.CPU, 0.8)
            solver.run(2000)
            results.append(solver.temperature("machine1", table1.CPU))
        assert results[0] == pytest.approx(results[1], abs=0.3)

    def test_iterations_and_time_advance(self, solver):
        solver.step(5)
        assert solver.iterations == 5
        assert solver.time == pytest.approx(5.0)
        solver.run(10.0)
        assert solver.iterations == 15


class TestFiddleInterface:
    def test_force_inlet_installs_override(self, solver):
        solver.force_temperature("machine1", "inlet", 35.0)
        solver.run(3000)
        assert solver.temperature("machine1", "inlet") == pytest.approx(35.0)
        # Everything downstream heats up accordingly.
        assert solver.temperature("machine1", table1.CPU) > 40.0

    def test_clear_inlet_override(self, solver):
        solver.force_temperature("machine1", "inlet", 40.0)
        solver.run(100)
        solver.clear_inlet_override("machine1")
        solver.run(3000)
        assert solver.temperature("machine1", "inlet") == pytest.approx(
            table1.INLET_TEMPERATURE
        )

    def test_force_component_temperature_relaxes(self, solver):
        solver.run(2000)
        settled = solver.temperature("machine1", table1.CPU)
        solver.force_temperature("machine1", table1.CPU, settled + 30.0)
        solver.run(2000)
        # Physics takes over again: the spike decays back toward the
        # natural steady state.
        assert solver.temperature("machine1", table1.CPU) == pytest.approx(
            settled, abs=1.0
        )

    def test_source_temperature_requires_cluster(self, solver):
        from repro.errors import UnknownNodeError

        with pytest.raises(UnknownNodeError):
            solver.set_source_temperature("AC", 30.0)


class TestClusterMode:
    def make_cluster_solver(self):
        cluster = validation_cluster()
        return Solver(
            list(cluster.machines.values()), cluster=cluster, record=False
        ), cluster

    def test_inlets_track_source(self):
        solver, _ = self.make_cluster_solver()
        solver.set_source_temperature(table1.AC, 27.0)
        solver.run(50)
        for machine in solver.machines:
            assert solver.temperature(machine, "inlet") == pytest.approx(27.0)

    def test_identical_machines_stay_identical(self):
        solver, _ = self.make_cluster_solver()
        for machine in solver.machines:
            solver.set_utilization(machine, table1.CPU, 0.6)
        solver.run(1000)
        temps = [solver.temperature(m, table1.CPU) for m in solver.machines]
        assert max(temps) - min(temps) < 1e-9

    def test_per_machine_override_beats_cluster(self):
        solver, _ = self.make_cluster_solver()
        solver.force_temperature("machine2", "inlet", 38.6)
        solver.run(2000)
        hot = solver.temperature("machine2", table1.CPU)
        cool = solver.temperature("machine1", table1.CPU)
        assert hot > cool + 10.0

    def test_recirculation_heats_downstream_machine(self):
        cluster = recirculating_cluster(
            machine_names=("m1", "m2"), recirculation=0.3
        )
        solver = Solver(
            list(cluster.machines.values()), cluster=cluster, record=False
        )
        solver.set_utilization("m1", table1.CPU, 1.0)
        solver.run(4000)
        # m2 re-ingests part of m1's hot exhaust, so its inlet is warmer
        # than the AC supply.
        assert solver.temperature("m2", "inlet") > table1.INLET_TEMPERATURE + 0.2


class TestRecording:
    def test_history_grows_per_tick(self, layout):
        solver = Solver([layout], record=True)
        solver.step(10)
        # Initial sample plus one per tick.
        assert len(solver.history.samples("machine1")) == 11

    def test_record_disabled(self, layout):
        solver = Solver([layout], record=False)
        solver.step(10)
        assert len(solver.history) == 0

    def test_history_contains_powers(self, layout):
        solver = Solver([layout], record=True)
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.step(1)
        sample = solver.history.last("machine1")
        assert sample.powers[table1.CPU] == pytest.approx(31.0)
        assert sample.powers[table1.POWER_SUPPLY] == pytest.approx(40.0)
