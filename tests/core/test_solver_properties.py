"""Property-based solver tests over randomly generated machine layouts.

Hypothesis builds random (but valid) thermal layouts — arbitrary chains
and splits of air regions, components hanging off random air nodes, and
random constants — and checks physical invariants the solver must uphold
on *every* model, not just the Table 1 server:

* temperatures stay bounded between the inlet temperature and a static
  worst-case bound;
* no air region reads below the inlet or above the hottest component;
* steady-state energy balance: the exhaust stream carries the dissipated
  power;
* determinism and mdot round-trip equivalence.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.core.graph import (
    AirEdge,
    AirRegion,
    Component,
    HeatEdge,
    MachineLayout,
)
from repro.core.power import LinearPowerModel
from repro.core.solver import Solver
from repro.mdot.loader import loads
from repro.mdot.writer import dump_machine


@st.composite
def random_layouts(draw):
    """A random valid MachineLayout: a chain of air regions with random
    bypass edges, plus 1-4 powered components attached to random regions."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10**6)))
    n_regions = draw(st.integers(min_value=2, max_value=6))
    regions = [f"air{i}" for i in range(n_regions)]
    air_edges = []
    for i in range(n_regions - 1):
        # Split the outflow of region i between the next region and one
        # random later region.
        if i + 2 < n_regions and rng.random() < 0.5:
            target = rng.randrange(i + 2, n_regions)
            fraction = round(rng.uniform(0.1, 0.9), 3)
            air_edges.append(AirEdge(regions[i], regions[i + 1], fraction))
            air_edges.append(AirEdge(regions[i], regions[target], 1.0 - fraction))
        else:
            air_edges.append(AirEdge(regions[i], regions[i + 1], 1.0))

    n_components = draw(st.integers(min_value=1, max_value=4))
    components = []
    heat_edges = []
    for c in range(n_components):
        name = f"comp{c}"
        p_base = round(rng.uniform(0.0, 10.0), 2)
        p_max = p_base + round(rng.uniform(0.0, 40.0), 2)
        components.append(
            Component(
                name=name,
                mass=round(rng.uniform(0.05, 2.0), 3),
                specific_heat=round(rng.uniform(400.0, 1500.0), 1),
                power_model=LinearPowerModel(p_base, p_max),
                monitored=True,
            )
        )
        # Attach to a random non-inlet region (possibly the exhaust).
        region = regions[rng.randrange(1, n_regions)]
        heat_edges.append(HeatEdge(name, region, round(rng.uniform(0.1, 8.0), 3)))
    # Occasionally a component-component edge.
    if n_components >= 2 and rng.random() < 0.5:
        heat_edges.append(
            HeatEdge("comp0", "comp1", round(rng.uniform(0.05, 2.0), 3))
        )

    inlet_temperature = round(rng.uniform(15.0, 35.0), 1)
    return MachineLayout(
        name="random",
        components=components,
        air_regions=[AirRegion(r) for r in regions],
        heat_edges=heat_edges,
        air_edges=air_edges,
        inlet=regions[0],
        exhaust=regions[-1],
        inlet_temperature=inlet_temperature,
        fan_cfm=round(rng.uniform(5.0, 80.0), 1),
    )


def worst_case_bound(layout):
    """A static upper bound: inlet + total max power over the weakest
    relevant conductance, plus slack."""
    total_power = sum(
        c.power_model.max_power for c in layout.components.values()
    )
    min_k = min((e.k for e in layout.heat_edges), default=1.0)
    min_k = max(min_k, 1e-2)
    return layout.inlet_temperature + total_power / min_k + total_power + 50.0


@settings(max_examples=30, deadline=None)
@given(layout=random_layouts(), utilization=st.floats(0.0, 1.0))
def test_temperatures_bounded(layout, utilization):
    solver = Solver([layout], record=False)
    for component in layout.components:
        solver.set_utilization("random", component, utilization)
    solver.run(2000)
    bound = worst_case_bound(layout)
    state = solver.machine("random")
    for node, temperature in state.temperatures.items():
        assert math.isfinite(temperature), node
        assert layout.inlet_temperature - 1e-6 <= temperature <= bound, node


@settings(max_examples=30, deadline=None)
@given(layout=random_layouts())
def test_air_regions_between_inlet_and_hottest_component(layout):
    solver = Solver([layout], record=False)
    for component in layout.components:
        solver.set_utilization("random", component, 1.0)
    solver.run(3000)
    state = solver.machine("random")
    hottest = max(
        state.temperatures[c] for c in layout.components
    )
    for region in layout.air_regions:
        temperature = state.temperatures[region]
        assert layout.inlet_temperature - 1e-6 <= temperature <= hottest + 1e-6


@settings(max_examples=15, deadline=None)
@given(layout=random_layouts())
def test_steady_state_energy_balance(layout):
    solver = Solver([layout], record=False)
    for component in layout.components:
        solver.set_utilization("random", component, 1.0)
    solver.run(30000)
    state = solver.machine("random")
    total_power = sum(state.power(c) for c in layout.components)
    capacity_rate = units.air_heat_capacity_rate(
        units.cfm_to_m3s(layout.fan_cfm)
    )
    rise = (
        state.temperatures[layout.exhaust]
        - layout.inlet_temperature
    )
    # Allow slack for very long thermal time constants that have not
    # fully settled in the 30,000 s window.
    assert rise * capacity_rate == pytest.approx(total_power, rel=0.15)


@settings(max_examples=20, deadline=None)
@given(layout=random_layouts())
def test_determinism(layout):
    def run():
        solver = Solver([layout], record=False)
        for component in layout.components:
            solver.set_utilization("random", component, 0.5)
        solver.run(300)
        return dict(solver.machine("random").temperatures)

    assert run() == run()


@settings(max_examples=20, deadline=None)
@given(layout=random_layouts())
def test_mdot_round_trip_preserves_solution(layout):
    machines, _ = loads(dump_machine(layout))
    reloaded = machines[0]

    def final_temps(candidate):
        solver = Solver([candidate], record=False)
        for component in candidate.components:
            solver.set_utilization(candidate.name, component, 0.7)
        solver.run(500)
        return solver.machine(candidate.name).temperatures

    original = final_temps(layout)
    round_tripped = final_temps(reloaded)
    for node, temperature in original.items():
        assert round_tripped[node] == pytest.approx(temperature, abs=1e-9)
