"""Tests for measurement recording, calibration fitting, and comparison."""

import pytest

from repro.config import table1
from repro.core.calibration import (
    Measurement,
    calibrate,
    compare,
    emulate,
    measure_run,
    observable_edges,
    smooth_series,
)
from repro.errors import CalibrationError
from repro.machine.server import SimulatedServer
from repro.machine.workloads import ConstantWorkload, cpu_microbenchmark


@pytest.fixture
def short_measurement(layout):
    server = SimulatedServer(
        layout,
        workload=cpu_microbenchmark(
            levels=(0.5, 1.0), busy_length=200.0, idle_length=100.0
        ),
        seed=4,
    )
    return measure_run(server, duration=600.0, interval=1.0)


class TestMeasureRun:
    def test_shape(self, short_measurement):
        m = short_measurement
        assert len(m) == 600
        assert set(m.utilizations) == {table1.CPU, table1.DISK_PLATTERS}
        assert set(m.temperatures) == {table1.CPU_AIR, table1.DISK_PLATTERS}

    def test_times_monotone(self, short_measurement):
        times = short_measurement.times
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_utilizations_reflect_workload(self, short_measurement):
        cpu = short_measurement.utilizations[table1.CPU]
        # First phase runs at 0.5 utilization.
        assert cpu[50] == pytest.approx(0.5, abs=0.01)
        # Idle phase after 200 s.
        assert cpu[250] == pytest.approx(0.0, abs=0.01)

    def test_rejects_bad_args(self, layout):
        server = SimulatedServer(layout, workload=ConstantWorkload({}))
        with pytest.raises(CalibrationError):
            measure_run(server, duration=0.0)


class TestDownsample:
    def test_reduces_length(self, short_measurement):
        down = short_measurement.downsample(5)
        assert len(down) == 120
        assert down.interval == pytest.approx(5.0)

    def test_averages_utilizations(self):
        m = Measurement(interval=1.0)
        m.times = [1.0, 2.0, 3.0, 4.0]
        m.utilizations = {"cpu": [0.0, 1.0, 1.0, 1.0]}
        m.temperatures = {"CPU Air": [20.0, 21.0, 22.0, 23.0]}
        down = m.downsample(2)
        assert down.utilizations["cpu"] == [0.5, 1.0]
        assert down.temperatures["CPU Air"] == [21.0, 23.0]
        assert down.times == [2.0, 4.0]

    def test_factor_one_is_identity(self, short_measurement):
        assert short_measurement.downsample(1) is short_measurement

    def test_rejects_nonpositive(self, short_measurement):
        with pytest.raises(CalibrationError):
            short_measurement.downsample(0)


class TestSmoothSeries:
    def test_constant_unchanged(self):
        assert smooth_series([5.0] * 100, 11) == pytest.approx([5.0] * 100)

    def test_removes_alternating_noise(self):
        noisy = [20.0 + (0.5 if i % 2 else -0.5) for i in range(100)]
        smoothed = smooth_series(noisy, 10)
        assert max(abs(s - 20.0) for s in smoothed) < 0.3

    def test_preserves_length(self):
        assert len(smooth_series(list(range(50)), 7)) == 50

    def test_window_one_identity(self):
        data = [1.0, 2.0, 3.0]
        assert smooth_series(data, 1) == data

    def test_empty_input(self):
        assert smooth_series([], 5) == []

    def test_rejects_bad_window(self):
        with pytest.raises(CalibrationError):
            smooth_series([1.0], 0)


class TestCompare:
    def test_basic(self):
        report = compare({"n": [1.0, 2.0, 3.0]}, {"n": [1.0, 2.5, 3.0]})
        rmse, max_err = report["n"]
        assert max_err == pytest.approx(0.5)
        assert rmse == pytest.approx((0.25 / 3) ** 0.5)

    def test_warmup_excluded(self):
        report = compare(
            {"n": [100.0, 1.0, 1.0]}, {"n": [0.0, 1.0, 1.0]}, warmup=1
        )
        assert report["n"] == (0.0, 0.0)

    def test_missing_node_skipped(self):
        report = compare({"a": [1.0]}, {"b": [1.0]})
        assert report == {}

    def test_length_mismatch_raises(self):
        with pytest.raises(CalibrationError):
            compare({"n": [1.0, 2.0]}, {"n": [1.0]})


class TestEmulate:
    def test_returns_aligned_series(self, layout, short_measurement):
        result = emulate(layout, short_measurement, dt=1.0)
        for node, series in result.items():
            assert len(series) == len(short_measurement)

    def test_rejects_dt_coarser_than_interval(self, layout, short_measurement):
        with pytest.raises(CalibrationError):
            emulate(layout, short_measurement, dt=5.0)

    def test_k_override_changes_result(self, layout, short_measurement):
        base = emulate(layout, short_measurement, dt=1.0)
        modified = emulate(
            layout,
            short_measurement,
            k_overrides={(table1.CPU, table1.CPU_AIR): 2.0},
            dt=1.0,
        )
        assert base[table1.CPU_AIR] != modified[table1.CPU_AIR]

    def test_power_scale_changes_result(self, layout, short_measurement):
        base = emulate(layout, short_measurement, dt=1.0)
        modified = emulate(
            layout, short_measurement, power_scales={table1.CPU: 0.5}, dt=1.0
        )
        assert max(base[table1.CPU_AIR]) > max(modified[table1.CPU_AIR])


class TestObservableEdges:
    def test_includes_sensor_adjacent_and_one_hop(self, layout):
        edges = observable_edges(layout, [table1.CPU_AIR, table1.DISK_PLATTERS])
        assert (table1.CPU, table1.CPU_AIR) in edges
        assert (table1.DISK_PLATTERS, table1.DISK_SHELL) in edges
        # One hop through the shell reaches the shell-air edge.
        assert ("Disk Air", "Disk Shell") in edges
        # The PSU edge is nowhere near either sensor.
        assert ("PS Air", "Power Supply") not in edges


class TestCalibrate:
    def test_requires_measurements(self, layout):
        with pytest.raises(CalibrationError):
            calibrate(layout, [])

    def test_unknown_edge_rejected(self, layout, short_measurement):
        with pytest.raises(CalibrationError):
            calibrate(
                layout,
                [short_measurement],
                fit_edges=[(table1.CPU, table1.DISK_AIR)],
            )

    def test_short_fit_improves_on_nominal(self, layout, short_measurement):
        # Even a short, single-benchmark calibration should reduce the
        # residual against the recording compared to the nominal inputs.
        result = calibrate(
            layout,
            [short_measurement],
            fit_edges=[(table1.CPU, table1.CPU_AIR)],
            dt=5.0,
            warmup=10,
            max_nfev=20,
        )
        nominal = emulate(layout, short_measurement, dt=1.0)
        fitted = emulate(
            layout, short_measurement, k_overrides=result.k_overrides, dt=1.0
        )
        nominal_report = compare(short_measurement.temperatures, nominal, warmup=60)
        fitted_report = compare(short_measurement.temperatures, fitted, warmup=60)
        assert (
            fitted_report[table1.CPU_AIR][0] <= nominal_report[table1.CPU_AIR][0]
        )
        assert result.iterations > 0

    def test_describe_mentions_edges(self, layout, short_measurement):
        result = calibrate(
            layout,
            [short_measurement],
            fit_edges=[(table1.CPU, table1.CPU_AIR)],
            dt=5.0,
            max_nfev=5,
        )
        text = result.describe()
        assert "CPU" in text and "rmse" in text

    def test_optimizer_failure_raises_typed_error_with_parameters(
        self, layout, short_measurement, monkeypatch
    ):
        """Numerical optimizer failures surface the failing parameter vector.

        Regression: this used to be a bare ``except Exception`` that
        reduced any failure to an opaque message, so a sweep could not
        tell a numerical blow-up from a code bug.
        """
        import numpy as np

        import repro.core.calibration as calibration_module

        def exploding_least_squares(fun, x0, **kwargs):
            fun(np.asarray(x0) + 0.25)  # the optimizer evaluated something
            raise ValueError("Residuals are not finite in the initial point.")

        monkeypatch.setattr(
            calibration_module, "least_squares", exploding_least_squares
        )
        with pytest.raises(CalibrationError) as excinfo:
            calibrate(
                layout,
                [short_measurement],
                fit_edges=[(table1.CPU, table1.CPU_AIR)],
                dt=5.0,
                max_nfev=3,
            )
        err = excinfo.value
        assert "optimizer failed" in str(err)
        assert err.parameters is not None
        assert all(abs(v - 0.25) < 1e-12 for v in err.parameters)
        assert isinstance(err.__cause__, ValueError)

    def test_non_numerical_bugs_propagate(
        self, layout, short_measurement, monkeypatch
    ):
        """Only numerical failures become CalibrationError; bugs propagate."""
        import repro.core.calibration as calibration_module

        def buggy_least_squares(fun, x0, **kwargs):
            raise TypeError("someone passed the wrong argument")

        monkeypatch.setattr(
            calibration_module, "least_squares", buggy_least_squares
        )
        with pytest.raises(TypeError):
            calibrate(
                layout,
                [short_measurement],
                fit_edges=[(table1.CPU, table1.CPU_AIR)],
                dt=5.0,
                max_nfev=3,
            )
