"""Tests for the component power models (Eq. 4 and variants)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.power import (
    ConstantPowerModel,
    LinearPowerModel,
    ScaledPowerModel,
    TablePowerModel,
)

utilization = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestLinearPowerModel:
    def test_endpoints(self):
        model = LinearPowerModel(7.0, 31.0)
        assert model.power(0.0) == pytest.approx(7.0)
        assert model.power(1.0) == pytest.approx(31.0)

    def test_midpoint(self):
        model = LinearPowerModel(10.0, 20.0)
        assert model.power(0.5) == pytest.approx(15.0)

    def test_heat_is_power_times_time(self):
        model = LinearPowerModel(5.0, 15.0)
        assert model.heat(0.5, 60.0) == pytest.approx(10.0 * 60.0)

    def test_rejects_out_of_range_utilization(self):
        model = LinearPowerModel(1.0, 2.0)
        with pytest.raises(ValueError):
            model.power(1.5)
        with pytest.raises(ValueError):
            model.power(-0.5)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            LinearPowerModel(10.0, 5.0)

    def test_rejects_negative_idle(self):
        with pytest.raises(ValueError):
            LinearPowerModel(-1.0, 5.0)

    def test_inverse_map_round_trips(self):
        model = LinearPowerModel(7.0, 31.0)
        for u in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert model.utilization_for_power(model.power(u)) == pytest.approx(u)

    def test_inverse_map_clamps(self):
        model = LinearPowerModel(7.0, 31.0)
        assert model.utilization_for_power(100.0) == 1.0
        assert model.utilization_for_power(0.0) == 0.0

    @given(u=utilization)
    def test_monotone_in_utilization(self, u):
        model = LinearPowerModel(7.0, 31.0)
        assert model.power(u) <= model.power(min(u + 0.1, 1.0)) + 1e-9


class TestConstantPowerModel:
    def test_flat(self):
        model = ConstantPowerModel(40.0)
        for u in (0.0, 0.3, 1.0):
            assert model.power(u) == 40.0
        assert model.idle_power == model.max_power == 40.0

    def test_inverse_map_degenerates_to_zero(self):
        assert ConstantPowerModel(40.0).utilization_for_power(40.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantPowerModel(-1.0)

    def test_still_validates_utilization(self):
        with pytest.raises(ValueError):
            ConstantPowerModel(4.0).power(2.0)


class TestTablePowerModel:
    def test_interpolates(self):
        model = TablePowerModel([(0.0, 10.0), (0.5, 30.0), (1.0, 35.0)])
        assert model.power(0.25) == pytest.approx(20.0)
        assert model.power(0.75) == pytest.approx(32.5)

    def test_exact_points(self):
        model = TablePowerModel([(0.0, 10.0), (1.0, 20.0)])
        assert model.power(0.0) == 10.0
        assert model.power(1.0) == 20.0

    def test_idle_and_max(self):
        model = TablePowerModel([(0.0, 10.0), (0.5, 40.0), (1.0, 35.0)])
        assert model.idle_power == 10.0
        assert model.max_power == 40.0  # non-monotone tables allowed

    def test_requires_full_span(self):
        with pytest.raises(ValueError):
            TablePowerModel([(0.1, 5.0), (1.0, 10.0)])
        with pytest.raises(ValueError):
            TablePowerModel([(0.0, 5.0), (0.9, 10.0)])

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            TablePowerModel([(0.0, 5.0)])

    def test_rejects_duplicate_utilizations(self):
        with pytest.raises(ValueError):
            TablePowerModel([(0.0, 5.0), (0.0, 6.0), (1.0, 7.0)])

    @given(u=utilization)
    def test_within_envelope(self, u):
        model = TablePowerModel([(0.0, 10.0), (0.3, 25.0), (1.0, 20.0)])
        assert 10.0 - 1e-9 <= model.power(u) <= 25.0 + 1e-9


class TestScaledPowerModel:
    def test_identity_by_default(self):
        inner = LinearPowerModel(5.0, 10.0)
        model = ScaledPowerModel(inner)
        assert model.power(0.5) == inner.power(0.5)

    def test_scaling(self):
        model = ScaledPowerModel(LinearPowerModel(5.0, 10.0), factor=0.5)
        assert model.power(1.0) == pytest.approx(5.0)
        assert model.idle_power == pytest.approx(2.5)
        assert model.max_power == pytest.approx(5.0)

    def test_factor_zero_is_off(self):
        model = ScaledPowerModel(ConstantPowerModel(40.0), factor=0.0)
        assert model.power(0.7) == 0.0

    def test_factor_mutable_at_runtime(self):
        model = ScaledPowerModel(ConstantPowerModel(10.0))
        model.factor = 2.0
        assert model.power(0.0) == 20.0

    def test_rejects_negative_factor(self):
        model = ScaledPowerModel(ConstantPowerModel(10.0))
        with pytest.raises(ValueError):
            model.factor = -0.1

    def test_exposes_inner(self):
        inner = ConstantPowerModel(10.0)
        assert ScaledPowerModel(inner).inner is inner
