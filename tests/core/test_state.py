"""Tests for MachineState (mutable solver state) and History."""

import pytest

from repro.config import table1
from repro.core.state import History, MachineState, Sample
from repro.errors import UnknownNodeError


@pytest.fixture
def state(layout):
    return MachineState(layout, initial_temperature=21.6)


class TestMachineState:
    def test_initial_temperatures(self, state, layout):
        assert set(state.temperatures) == set(layout.node_names)
        assert all(t == 21.6 for t in state.temperatures.values())

    def test_constants_copied_from_layout(self, state):
        assert state.edge_k(table1.CPU, table1.CPU_AIR) == pytest.approx(0.75)
        assert state.fractions[(table1.INLET, table1.DISK_AIR)] == pytest.approx(0.4)
        assert state.fan_cfm == pytest.approx(table1.FAN_CFM)

    def test_set_temperature(self, state):
        state.set_temperature(table1.CPU, 55.0)
        assert state.temperature(table1.CPU) == 55.0

    def test_set_temperature_unknown_node(self, state):
        with pytest.raises(UnknownNodeError):
            state.set_temperature("ghost", 50.0)

    def test_temperature_unknown_node(self, state):
        with pytest.raises(UnknownNodeError):
            state.temperature("ghost")

    def test_set_k_either_order(self, state):
        state.set_k(table1.CPU_AIR, table1.CPU, 1.5)
        assert state.edge_k(table1.CPU, table1.CPU_AIR) == 1.5

    def test_set_k_unknown_edge(self, state):
        with pytest.raises(UnknownNodeError):
            state.set_k(table1.CPU, table1.DISK_AIR, 1.0)

    def test_set_k_negative(self, state):
        with pytest.raises(ValueError):
            state.set_k(table1.CPU, table1.CPU_AIR, -1.0)

    def test_layout_untouched_by_mutation(self, state, layout):
        state.set_k(table1.CPU, table1.CPU_AIR, 99.0)
        original = {e.key: e.k for e in layout.heat_edges}
        assert original[(table1.CPU, table1.CPU_AIR)] == pytest.approx(0.75)

    def test_set_fraction_invalidates_flow_cache(self, state):
        before = state.flows()[table1.DISK_AIR]
        state.set_fraction(table1.INLET, table1.DISK_AIR, 0.2)
        # Conservation now violated at the inlet, but flows() just
        # propagates whatever the live fractions say.
        after = state.flows()[table1.DISK_AIR]
        assert after == pytest.approx(before * 0.5)

    def test_set_fraction_bounds(self, state):
        with pytest.raises(ValueError):
            state.set_fraction(table1.INLET, table1.DISK_AIR, 1.5)

    def test_set_fraction_unknown_edge(self, state):
        with pytest.raises(UnknownNodeError):
            state.set_fraction(table1.DISK_AIR, table1.INLET, 0.5)

    def test_set_fan_scales_flows(self, state):
        before = state.flows()[table1.EXHAUST]
        state.set_fan_cfm(table1.FAN_CFM * 2)
        assert state.flows()[table1.EXHAUST] == pytest.approx(2 * before)

    def test_set_fan_rejects_nonpositive(self, state):
        with pytest.raises(ValueError):
            state.set_fan_cfm(0.0)

    def test_utilization_roundtrip(self, state):
        state.set_utilization(table1.CPU, 0.6)
        assert state.utilizations[table1.CPU] == 0.6

    def test_utilization_bounds(self, state):
        with pytest.raises(ValueError):
            state.set_utilization(table1.CPU, 1.2)

    def test_utilization_unknown_component(self, state):
        with pytest.raises(UnknownNodeError):
            state.set_utilization("ghost", 0.5)

    def test_power_uses_scaled_model(self, state):
        state.set_utilization(table1.CPU, 1.0)
        assert state.power(table1.CPU) == pytest.approx(31.0)
        state.set_power_scale(table1.CPU, 0.5)
        assert state.power(table1.CPU) == pytest.approx(15.5)

    def test_power_scale_unknown_component(self, state):
        with pytest.raises(UnknownNodeError):
            state.set_power_scale("ghost", 0.5)


class TestHistory:
    def _sample(self, t, temp):
        return Sample(
            time=t,
            temperatures={"CPU": temp},
            utilizations={"CPU": 0.5},
            powers={"CPU": 19.0},
        )

    def test_append_and_series(self):
        history = History()
        history.append("m1", self._sample(0.0, 20.0))
        history.append("m1", self._sample(1.0, 21.0))
        assert history.series("m1", "CPU") == [20.0, 21.0]
        assert history.times("m1") == [0.0, 1.0]

    def test_machines_sorted(self):
        history = History()
        history.append("b", self._sample(0.0, 1.0))
        history.append("a", self._sample(0.0, 1.0))
        assert history.machines() == ["a", "b"]

    def test_utilization_and_power_series(self):
        history = History()
        history.append("m1", self._sample(0.0, 20.0))
        assert history.utilization_series("m1", "CPU") == [0.5]
        assert history.power_series("m1", "CPU") == [19.0]

    def test_last(self):
        history = History()
        history.append("m1", self._sample(0.0, 20.0))
        history.append("m1", self._sample(5.0, 30.0))
        assert history.last("m1").time == 5.0

    def test_len_counts_all_samples(self):
        history = History()
        history.append("a", self._sample(0.0, 1.0))
        history.append("b", self._sample(0.0, 1.0))
        history.append("b", self._sample(1.0, 2.0))
        assert len(history) == 3

    def test_empty_series(self):
        history = History()
        assert history.series("nope", "CPU") == []
        assert history.samples("nope") == []
