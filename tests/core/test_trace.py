"""Tests for utilization traces, persistence, and offline solving."""

import pytest
from hypothesis import given, strategies as st

from repro.config import table1
from repro.core.trace import (
    TimedEvent,
    TracePoint,
    UtilizationTrace,
    load_traces,
    run_offline,
    save_history,
    save_traces,
)
from repro.errors import TraceError


def simple_trace(machine="machine1"):
    return UtilizationTrace(
        machine,
        [
            TracePoint(0.0, {table1.CPU: 0.2}),
            TracePoint(100.0, {table1.CPU: 0.8}),
            TracePoint(200.0, {table1.CPU: 0.0}),
        ],
    )


class TestUtilizationTrace:
    def test_step_function_semantics(self):
        trace = simple_trace()
        assert trace.utilizations_at(0.0) == {table1.CPU: 0.2}
        assert trace.utilizations_at(99.9) == {table1.CPU: 0.2}
        assert trace.utilizations_at(100.0) == {table1.CPU: 0.8}
        assert trace.utilizations_at(500.0) == {table1.CPU: 0.0}

    def test_before_first_point_is_empty(self):
        assert simple_trace().utilizations_at(-1.0) == {}

    def test_duration(self):
        assert simple_trace().duration == 200.0

    def test_components(self):
        trace = UtilizationTrace(
            "m",
            [
                TracePoint(0.0, {"a": 0.1}),
                TracePoint(1.0, {"b": 0.2, "a": 0.3}),
            ],
        )
        assert sorted(trace.components) == ["a", "b"]

    def test_rejects_unsorted(self):
        with pytest.raises(TraceError):
            UtilizationTrace(
                "m",
                [TracePoint(10.0, {}), TracePoint(5.0, {})],
            )

    def test_rejects_duplicate_times(self):
        with pytest.raises(TraceError):
            UtilizationTrace(
                "m",
                [TracePoint(1.0, {}), TracePoint(1.0, {})],
            )

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(TraceError):
            UtilizationTrace("m", [TracePoint(0.0, {"cpu": 1.5})])

    def test_from_function(self):
        trace = UtilizationTrace.from_function(
            "m", duration=10.0, interval=2.0, func=lambda t: {"cpu": t / 10.0}
        )
        assert len(trace) == 5
        assert trace.utilizations_at(4.0) == {"cpu": 0.4}

    def test_from_function_validates(self):
        with pytest.raises(TraceError):
            UtilizationTrace.from_function("m", 0.0, 1.0, lambda t: {})

    def test_replicate(self):
        clones = simple_trace().replicate(["a", "b", "c"])
        assert [t.machine for t in clones] == ["a", "b", "c"]
        for clone in clones:
            assert clone.utilizations_at(100.0) == {table1.CPU: 0.8}

    def test_shifted(self):
        shifted = simple_trace().shifted(50.0)
        assert shifted.utilizations_at(100.0) == {table1.CPU: 0.2}
        assert shifted.utilizations_at(150.0) == {table1.CPU: 0.8}

    def test_shifted_rejects_negative(self):
        with pytest.raises(TraceError):
            simple_trace().shifted(-1.0)


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        original = [simple_trace("m1"), simple_trace("m2")]
        save_traces(original, path)
        loaded = load_traces(path)
        assert [t.machine for t in loaded] == ["m1", "m2"]
        for trace in loaded:
            assert trace.utilizations_at(150.0) == {table1.CPU: 0.8}

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope,nope\n1,2\n")
        with pytest.raises(TraceError):
            load_traces(path)

    def test_load_rejects_bad_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,machine,component,utilization\nxx,m,c,0.5\n")
        with pytest.raises(TraceError):
            load_traces(path)

    def test_load_rejects_short_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,machine,component,utilization\n1,m,c\n")
        with pytest.raises(TraceError):
            load_traces(path)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=10,
        )
    )
    def test_round_trip_preserves_values(self, tmp_path_factory, values):
        path = tmp_path_factory.mktemp("traces") / "t.csv"
        points = [
            TracePoint(float(i), {"cpu": round(v, 6)})
            for i, v in enumerate(values)
        ]
        save_traces([UtilizationTrace("m", points)], path)
        loaded = load_traces(path)[0]
        for i, v in enumerate(values):
            assert loaded.utilizations_at(float(i))["cpu"] == pytest.approx(
                round(v, 6), abs=1e-6
            )


class TestRunOffline:
    def test_produces_history(self, layout):
        history = run_offline([layout], [simple_trace()], duration=200.0)
        assert history.machines() == ["machine1"]
        assert len(history.times("machine1")) == 201  # initial + 200 ticks

    def test_usage_follows_trace(self, layout):
        history = run_offline([layout], [simple_trace()], duration=200.0)
        utils = history.utilization_series("machine1", table1.CPU)
        # At t=150 the trace says 0.8.
        idx = history.times("machine1").index(150.0)
        assert utils[idx] == pytest.approx(0.8)

    def test_missing_trace_rejected(self, layout):
        with pytest.raises(TraceError):
            run_offline([layout], [simple_trace("other")])

    def test_duration_defaults_to_trace(self, layout):
        history = run_offline([layout], [simple_trace()])
        assert history.times("machine1")[-1] == pytest.approx(200.0)

    def test_events_fire_once_at_time(self, layout):
        fired = []
        events = [
            TimedEvent(time=50.0, action=lambda s: fired.append(s.time)),
        ]
        run_offline([layout], [simple_trace()], duration=100.0, events=events)
        assert len(fired) == 1
        assert fired[0] == pytest.approx(50.0)

    def test_event_can_mutate_solver(self, layout):
        events = [
            TimedEvent(
                time=10.0,
                action=lambda s: s.force_temperature("machine1", "inlet", 40.0),
            )
        ]
        history = run_offline(
            [layout], [simple_trace()], duration=200.0, events=events
        )
        # The inlet override persists, so the final inlet reading is 40.
        assert history.last("machine1").temperatures[table1.INLET] == pytest.approx(
            40.0
        )

    def test_history_csv_export(self, tmp_path, layout):
        history = run_offline([layout], [simple_trace()], duration=10.0)
        path = tmp_path / "history.csv"
        save_history(history, path)
        text = path.read_text()
        lines = text.strip().splitlines()
        assert lines[0] == "time,machine,node,temperature,utilization,power"
        # 11 samples x 14 nodes data rows.
        assert len(lines) == 1 + 11 * 14

    def test_replicated_traces_emulate_cluster(self, cluster):
        # The paper: "replicating these traces allows Mercury to emulate
        # large cluster installations".
        layouts = list(cluster.machines.values())
        traces = simple_trace().replicate([l.name for l in layouts])
        history = run_offline(
            layouts, traces, cluster=cluster, duration=200.0
        )
        assert set(history.machines()) == {l.name for l in layouts}
        finals = [
            history.last(m).temperatures[table1.CPU] for m in history.machines()
        ]
        assert max(finals) - min(finals) < 1e-9
