"""Tests for variable-speed fan modeling (the section 7 extension)."""

import pytest

from repro.config import table1
from repro.core.fans import DEFAULT_SERVER_CURVE, FanController, FanCurve
from repro.core.solver import Solver
from repro.errors import SolverError


class TestFanCurve:
    def test_interpolates(self):
        curve = FanCurve([(30.0, 20.0), (50.0, 40.0)])
        assert curve.speed(40.0) == pytest.approx(30.0)

    def test_clamps_at_ends(self):
        curve = FanCurve([(30.0, 20.0), (50.0, 40.0)])
        assert curve.speed(0.0) == 20.0
        assert curve.speed(90.0) == 40.0

    def test_exact_points(self):
        curve = FanCurve([(30.0, 20.0), (50.0, 40.0)])
        assert curve.speed(30.0) == 20.0
        assert curve.speed(50.0) == 40.0

    def test_flat_segments_allowed(self):
        curve = FanCurve([(30.0, 20.0), (40.0, 20.0), (50.0, 40.0)])
        assert curve.speed(35.0) == 20.0

    def test_min_max(self):
        assert DEFAULT_SERVER_CURVE.min_speed < DEFAULT_SERVER_CURVE.max_speed

    @pytest.mark.parametrize(
        "points",
        [
            [(30.0, 20.0)],                      # too few
            [(30.0, 20.0), (30.0, 25.0)],        # duplicate temperature
            [(30.0, 40.0), (50.0, 20.0)],        # decreasing speed
            [(30.0, 0.0), (50.0, 40.0)],         # zero speed
        ],
    )
    def test_invalid_curves_rejected(self, points):
        with pytest.raises(ValueError):
            FanCurve(points)


class TestFanController:
    def make(self, layout, **kwargs):
        solver = Solver([layout], record=False)
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.5)
        controller = FanController(
            solver, "machine1", table1.CPU, period=5.0, **kwargs
        )
        return solver, controller

    def test_rejects_bad_period(self, layout):
        solver = Solver([layout], record=False)
        with pytest.raises(SolverError):
            FanController(solver, "machine1", table1.CPU, period=0.0)

    def test_ramps_up_when_hot(self, layout):
        solver, controller = self.make(layout)
        start_cfm = controller.current_cfm
        for _ in range(2000):
            solver.step()
            controller.tick(1.0)
        assert controller.current_cfm > start_cfm
        assert controller.events

    def test_slew_rate_limited(self, layout):
        solver, controller = self.make(layout, max_slew_cfm_per_s=0.5)
        solver.force_temperature("machine1", table1.CPU, 80.0)
        before = controller.current_cfm
        controller.adjust()
        # One period at 0.5 cfm/s and 5 s period: at most 2.5 cfm of change.
        assert abs(controller.current_cfm - before) <= 2.5 + 1e-9

    def test_no_event_when_steady(self, layout):
        solver, controller = self.make(layout)
        controller.adjust()
        events = len(controller.events)
        controller.adjust()  # same temperature, same target
        assert len(controller.events) <= events + 1

    def test_tick_period(self, layout):
        solver, controller = self.make(layout)
        solver.force_temperature("machine1", table1.CPU, 80.0)
        assert controller.tick(1.0) is False
        assert controller.tick(4.0) is True

    def test_closed_loop_cools_hot_machine(self, layout):
        # The whole point: with fan control the machine settles cooler
        # than with the fan pinned at the curve's idle speed.
        managed_solver, controller = self.make(layout)
        for _ in range(4000):
            managed_solver.step()
            controller.tick(1.0)
        managed = managed_solver.temperature("machine1", table1.CPU)

        fixed_solver = Solver([layout], record=False)
        fixed_solver.set_utilization("machine1", table1.CPU, 1.0)
        fixed_solver.set_utilization("machine1", table1.DISK_PLATTERS, 0.5)
        fixed_solver.machine("machine1").set_fan_cfm(
            DEFAULT_SERVER_CURVE.min_speed
        )
        fixed_solver.run(4000)
        fixed = fixed_solver.temperature("machine1", table1.CPU)
        assert managed < fixed - 3.0
