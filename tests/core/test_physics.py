"""Unit and property tests for the five core equations."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import physics

finite = st.floats(min_value=-100.0, max_value=200.0, allow_nan=False)
positive = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False)
conductance = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestNewtonCooling:
    def test_heat_flows_hot_to_cold(self):
        q = physics.newton_cooling_heat(k=2.0, t_hot=50.0, t_cold=20.0, dt=1.0)
        assert q == pytest.approx(60.0)

    def test_zero_difference_means_no_heat(self):
        assert physics.newton_cooling_heat(5.0, 30.0, 30.0, 10.0) == 0.0

    def test_sign_flips_with_direction(self):
        forward = physics.newton_cooling_heat(1.0, 40.0, 20.0, 2.0)
        backward = physics.newton_cooling_heat(1.0, 20.0, 40.0, 2.0)
        assert forward == -backward

    def test_scales_linearly_with_time(self):
        one = physics.newton_cooling_heat(1.5, 35.0, 25.0, 1.0)
        ten = physics.newton_cooling_heat(1.5, 35.0, 25.0, 10.0)
        assert ten == pytest.approx(10.0 * one)

    @given(k=conductance, t1=finite, t2=finite, dt=positive)
    def test_antisymmetry_property(self, k, t1, t2, dt):
        q12 = physics.newton_cooling_heat(k, t1, t2, dt)
        q21 = physics.newton_cooling_heat(k, t2, t1, dt)
        assert q12 == pytest.approx(-q21, abs=1e-9)


class TestTemperatureDelta:
    def test_basic(self):
        # 896 J into 1 kg of aluminium raises it by 1 K.
        assert physics.temperature_delta(896.0, 1.0, 896.0) == pytest.approx(1.0)

    def test_negative_heat_cools(self):
        assert physics.temperature_delta(-100.0, 1.0, 100.0) == pytest.approx(-1.0)

    @pytest.mark.parametrize("mass,c", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_rejects_nonpositive_mass_or_heat_capacity(self, mass, c):
        with pytest.raises(ValueError):
            physics.temperature_delta(1.0, mass, c)

    @given(q=st.floats(min_value=-1e5, max_value=1e5), m=positive, c=positive)
    def test_proportional_to_heat(self, q, m, c):
        assert physics.temperature_delta(q, m, c) == pytest.approx(
            q / (m * c), rel=1e-12
        )


class TestConductionHeat:
    def test_matches_explicit_form_for_small_steps(self):
        # k dt << C_eff: the analytic form reduces to k (T1 - T2) dt.
        q = physics.conduction_heat(0.1, 40.0, 20.0, 1.0, mc_1=500.0, mc_2=800.0)
        assert q == pytest.approx(0.1 * 20.0 * 1.0, rel=1e-3)

    def test_never_overshoots_equilibrium(self):
        # Even an absurdly large k dt cannot push past equalization.
        mc_1, mc_2 = 10.0, 10.0
        t1, t2 = 100.0, 0.0
        q = physics.conduction_heat(1e6, t1, t2, 1.0, mc_1, mc_2)
        t1_after = t1 - q / mc_1
        t2_after = t2 + q / mc_2
        assert t1_after == pytest.approx(t2_after, abs=1e-6)
        assert t1_after == pytest.approx(50.0, abs=1e-6)

    def test_zero_k_moves_no_heat(self):
        assert physics.conduction_heat(0.0, 50.0, 10.0, 1.0, 10.0, 10.0) == 0.0

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            physics.conduction_heat(-1.0, 30.0, 20.0, 1.0, 10.0, 10.0)

    def test_rejects_nonpositive_heat_capacity(self):
        with pytest.raises(ValueError):
            physics.conduction_heat(1.0, 30.0, 20.0, 1.0, 0.0, 10.0)

    @given(
        k=st.floats(min_value=0.0, max_value=1e4),
        t1=finite,
        t2=finite,
        dt=positive,
        mc_1=positive,
        mc_2=positive,
    )
    def test_energy_conserving_and_bounded(self, k, t1, t2, dt, mc_1, mc_2):
        q = physics.conduction_heat(k, t1, t2, dt, mc_1, mc_2)
        t1_after = t1 - q / mc_1
        t2_after = t2 + q / mc_2
        # Heat flows downhill and never past the equilibrium point.
        if t1 > t2:
            assert q >= 0.0
            assert t1_after >= t2_after - 1e-6
        elif t1 < t2:
            assert q <= 0.0
            assert t1_after <= t2_after + 1e-6
        else:
            assert q == pytest.approx(0.0, abs=1e-9)


class TestStreamExchange:
    def test_outlet_approaches_body_with_large_k(self):
        result = physics.stream_exchange(
            k=1e6, t_body=60.0, t_stream_in=20.0, capacity_rate=5.0, dt=1.0
        )
        assert result.t_out == pytest.approx(60.0, abs=1e-3)

    def test_no_flow_means_no_exchange(self):
        result = physics.stream_exchange(
            k=2.0, t_body=60.0, t_stream_in=20.0, capacity_rate=0.0, dt=1.0
        )
        assert result.t_out == 20.0
        assert result.heat_to_stream == 0.0

    def test_heat_balance(self):
        # Heat gained by the stream equals capacity_rate * dt * (T_out - T_in).
        result = physics.stream_exchange(
            k=1.0, t_body=50.0, t_stream_in=20.0, capacity_rate=3.0, dt=2.0
        )
        assert result.heat_to_stream == pytest.approx(
            3.0 * 2.0 * (result.t_out - 20.0)
        )

    def test_small_ntu_matches_newton(self):
        # For k << capacity_rate, Q -> k (T_body - T_in) dt.
        k, c, dt = 0.01, 100.0, 1.0
        result = physics.stream_exchange(k, 50.0, 20.0, c, dt)
        assert result.heat_to_stream == pytest.approx(k * 30.0 * dt, rel=1e-3)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            physics.stream_exchange(-1.0, 50.0, 20.0, 1.0, 1.0)

    @given(
        k=st.floats(min_value=0.0, max_value=1e3),
        t_body=finite,
        t_in=finite,
        c=positive,
        dt=positive,
    )
    def test_outlet_between_inlet_and_body(self, k, t_body, t_in, c, dt):
        result = physics.stream_exchange(k, t_body, t_in, c, dt)
        low, high = min(t_body, t_in), max(t_body, t_in)
        assert low - 1e-9 <= result.t_out <= high + 1e-9

    @given(
        k=st.floats(min_value=0.0, max_value=1e3),
        t_body=finite,
        t_in=finite,
        c=positive,
        dt=positive,
    )
    def test_heat_sign_follows_gradient(self, k, t_body, t_in, c, dt):
        result = physics.stream_exchange(k, t_body, t_in, c, dt)
        # Tolerance scales with c*dt: the heat is c*dt*(t_out - t_in) and
        # t_out carries float rounding of order 1e-16 * |temperatures|.
        tol = 1e-9 + 1e-12 * c * dt
        if t_body > t_in:
            assert result.heat_to_stream >= -tol
        elif t_body < t_in:
            assert result.heat_to_stream <= tol


class TestMixStreams:
    def test_equal_weights_average(self):
        assert physics.mix_streams([10.0, 30.0], [1.0, 1.0]) == pytest.approx(20.0)

    def test_weighting(self):
        assert physics.mix_streams([10.0, 30.0], [3.0, 1.0]) == pytest.approx(15.0)

    def test_single_stream_is_identity(self):
        assert physics.mix_streams([42.0], [0.7]) == pytest.approx(42.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            physics.mix_streams([1.0, 2.0], [1.0])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ValueError):
            physics.mix_streams([1.0], [0.0])

    @given(
        temps=st.lists(finite, min_size=1, max_size=8),
        data=st.data(),
    )
    def test_mix_within_input_range(self, temps, data):
        weights = data.draw(
            st.lists(
                st.floats(min_value=0.01, max_value=10.0),
                min_size=len(temps),
                max_size=len(temps),
            )
        )
        mixed = physics.mix_streams(temps, weights)
        assert min(temps) - 1e-6 <= mixed <= max(temps) + 1e-6
