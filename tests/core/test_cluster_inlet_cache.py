"""The hoisted cluster-inlet mixing weights and their invalidation.

The solver precomputes each machine's perfect-mixing inlet terms —
``(is_source, src, flow * fraction)`` — once, instead of re-deriving
them from the cluster graph every tick.  These tests pin the cache's
lifecycle: built lazily, reused across ticks, and invalidated by a
:meth:`Solver.set_cluster_fraction` edit (directly or through the
fiddle ``cluster fraction`` verb), which must change behaviour on the
very next tick.
"""

import pytest

from repro.config import table1
from repro.config.layouts import validation_cluster, validation_machine
from repro.core.compiled import have_numpy
from repro.core.graph import ClusterAirEdge, ClusterLayout, CoolingSource
from repro.core.solver import Solver
from repro.errors import UnknownNodeError
from repro.fiddle.tool import Fiddle


def recirculating_cluster():
    """Two Table 1 servers; 30% of m1's exhaust feeds m2's inlet."""
    machines = [validation_machine("m1"), validation_machine("m2")]
    edges = [
        ClusterAirEdge("AC", "m1", 0.5),
        ClusterAirEdge("AC", "m2", 0.5),
        ClusterAirEdge("m1", "m2", 0.3),
        ClusterAirEdge("m1", "exhaust", 0.7),
        ClusterAirEdge("m2", "exhaust", 1.0),
    ]
    return ClusterLayout(
        machines=machines,
        sources=[CoolingSource("AC", table1.INLET_TEMPERATURE)],
        edges=edges,
        sinks=["exhaust"],
    )


def _solver(cluster, engine="python"):
    solver = Solver(
        list(cluster.machines.values()), cluster=cluster,
        record=False, engine=engine,
    )
    solver.set_utilization("m1", table1.CPU, 1.0)
    return solver


def test_inlet_plan_is_built_lazily_and_reused():
    solver = _solver(recirculating_cluster())
    assert solver._inlet_plans is None
    solver.step()
    plans = solver._inlet_plans
    assert plans is not None and set(plans) == {"m1", "m2"}
    m2_plan = plans["m2"]
    # AC term plus the recirculation term from m1, in edge order.
    assert [(is_src, src) for is_src, src, _ in m2_plan] == [
        (True, "AC"), (False, "m1"),
    ]
    solver.step(5)
    assert solver._inlet_plans is plans  # same table, no recompute


def test_set_cluster_fraction_invalidates_and_changes_mixing():
    baseline = _solver(recirculating_cluster())
    edited = _solver(recirculating_cluster())
    for solver in (baseline, edited):
        solver.step(50)  # let m1 heat up and its exhaust recirculate

    edited.set_cluster_fraction("m1", "m2", 0.9)
    assert edited._inlet_plans is None  # cache dropped
    for solver in (baseline, edited):
        solver.step(20)

    plan = edited._inlet_plans["m2"]
    weights = {src: weight for _, src, weight in plan}
    base_weights = {
        src: weight for _, src, weight in baseline._inlet_plans["m2"]
    }
    assert weights["m1"] == pytest.approx(3.0 * base_weights["m1"])
    # More hot exhaust in the mix: m2 must now run a hotter inlet.
    inlet = edited.cluster.machines["m2"].inlet
    assert (
        edited.temperature("m2", inlet) > baseline.temperature("m2", inlet)
    )


def test_set_cluster_fraction_validation():
    solver = _solver(recirculating_cluster())
    with pytest.raises(UnknownNodeError):
        solver.set_cluster_fraction("m2", "m1", 0.5)  # no such edge
    with pytest.raises(ValueError):
        solver.set_cluster_fraction("m1", "m2", 1.5)
    # A solver without a cluster has no cluster edges at all.
    single = Solver([validation_machine("m1")], record=False)
    with pytest.raises(UnknownNodeError):
        single.set_cluster_fraction("AC", "m1", 0.5)


def test_fiddle_cluster_fraction_verb():
    solver = _solver(recirculating_cluster())
    solver.step(50)
    fiddle = Fiddle(solver)
    fiddle.command("fiddle cluster fraction m1 m2 0.9")
    assert solver._inlet_plans is None
    assert fiddle.log == ["cluster fraction m1|m2 0.9"]
    solver.step()
    assert solver._cluster_fractions[("m1", "m2")] == 0.9


@pytest.mark.skipif(not have_numpy(), reason="compiled engine needs numpy")
def test_cluster_fraction_edit_matches_across_engines():
    reference = _solver(recirculating_cluster(), engine="python")
    compiled = _solver(recirculating_cluster(), engine="compiled")
    for solver in (reference, compiled):
        solver.step(30)
        solver.set_cluster_fraction("m1", "m2", 0.85)
        solver.step(30)
    for machine in ("m1", "m2"):
        ref_state = reference.machine(machine)
        for node, expected in ref_state.temperatures.items():
            actual = compiled.machine(machine).temperatures[node]
            assert abs(actual - expected) <= 1e-9, (machine, node)


def test_validation_cluster_fraction_edit_starves_a_machine():
    """Cutting AC share redistributes; the edit shows up in the mix."""
    cluster = validation_cluster(["machine1", "machine2"])
    solver = Solver(
        list(cluster.machines.values()), cluster=cluster, record=False
    )
    solver.step()
    before = dict(solver._inlet_plans)
    solver.set_cluster_fraction(table1.AC, "machine1", 0.1)
    solver.step()
    after = solver._inlet_plans
    assert after is not before
    ac_weight = {
        src: w for _, src, w in after["machine1"] if src == table1.AC
    }[table1.AC]
    old_weight = {
        src: w for _, src, w in before["machine1"] if src == table1.AC
    }[table1.AC]
    assert ac_weight == pytest.approx(0.2 * old_weight)
