"""Tests for heat-flow / air-flow graph construction and validation."""

import pytest

from repro import units
from repro.config import table1
from repro.core.graph import (
    AirEdge,
    AirRegion,
    ClusterAirEdge,
    ClusterLayout,
    Component,
    CoolingSource,
    HeatEdge,
    MachineLayout,
)
from repro.core.power import ConstantPowerModel, LinearPowerModel
from repro.errors import (
    AirFlowConservationError,
    DuplicateNodeError,
    GraphError,
    UnknownNodeError,
)
from tests.conftest import make_tiny_layout


def _component(name, monitored=False):
    return Component(
        name=name,
        mass=1.0,
        specific_heat=900.0,
        power_model=LinearPowerModel(1.0, 5.0),
        monitored=monitored,
    )


class TestComponent:
    def test_heat_capacity(self):
        assert _component("x").heat_capacity == pytest.approx(900.0)

    def test_rejects_nonpositive_mass(self):
        with pytest.raises(ValueError):
            Component("x", 0.0, 900.0, ConstantPowerModel(1.0))

    def test_rejects_nonpositive_specific_heat(self):
        with pytest.raises(ValueError):
            Component("x", 1.0, -5.0, ConstantPowerModel(1.0))


class TestHeatEdge:
    def test_key_is_sorted(self):
        assert HeatEdge("b", "a", 1.0).key == ("a", "b")
        assert HeatEdge("a", "b", 1.0).key == ("a", "b")

    def test_other(self):
        edge = HeatEdge("a", "b", 1.0)
        assert edge.other("a") == "b"
        assert edge.other("b") == "a"
        with pytest.raises(UnknownNodeError):
            edge.other("c")

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            HeatEdge("a", "b", -0.1)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            HeatEdge("a", "a", 1.0)


class TestAirEdge:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AirEdge("a", "b", 1.5)
        with pytest.raises(ValueError):
            AirEdge("a", "b", -0.1)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            AirEdge("a", "a", 0.5)


class TestMachineLayoutValidation:
    def test_tiny_layout_builds(self, tiny_layout):
        assert tiny_layout.air_order[0] == "in"
        assert tiny_layout.air_order[-1] == "out"

    def test_validation_machine_builds(self, layout):
        assert len(layout.components) == 5
        assert len(layout.air_regions) == 9
        assert layout.monitored_components() == [table1.DISK_PLATTERS, table1.CPU]

    def test_duplicate_component_rejected(self):
        with pytest.raises(DuplicateNodeError):
            MachineLayout(
                "m",
                [_component("x"), _component("x")],
                [AirRegion("in"), AirRegion("out")],
                [],
                [AirEdge("in", "out", 1.0)],
                inlet="in",
                exhaust="out",
                inlet_temperature=20.0,
                fan_cfm=10.0,
            )

    def test_component_air_name_collision_rejected(self):
        with pytest.raises(DuplicateNodeError):
            MachineLayout(
                "m",
                [_component("in")],
                [AirRegion("in"), AirRegion("out")],
                [],
                [AirEdge("in", "out", 1.0)],
                inlet="in",
                exhaust="out",
                inlet_temperature=20.0,
                fan_cfm=10.0,
            )

    def test_unknown_inlet_rejected(self):
        with pytest.raises(UnknownNodeError):
            MachineLayout(
                "m", [], [AirRegion("a"), AirRegion("b")],
                [], [AirEdge("a", "b", 1.0)],
                inlet="nope", exhaust="b",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_inlet_equal_exhaust_rejected(self):
        with pytest.raises(GraphError):
            MachineLayout(
                "m", [], [AirRegion("a")], [], [],
                inlet="a", exhaust="a",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_dangling_heat_edge_rejected(self):
        with pytest.raises(UnknownNodeError):
            MachineLayout(
                "m", [_component("c")],
                [AirRegion("in"), AirRegion("out")],
                [HeatEdge("c", "ghost", 1.0)],
                [AirEdge("in", "out", 1.0)],
                inlet="in", exhaust="out",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_duplicate_heat_edge_rejected(self):
        with pytest.raises(GraphError):
            MachineLayout(
                "m", [_component("c")],
                [AirRegion("in"), AirRegion("out")],
                [HeatEdge("c", "in", 1.0), HeatEdge("in", "c", 2.0)],
                [AirEdge("in", "out", 1.0)],
                inlet="in", exhaust="out",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_air_edge_touching_component_rejected(self):
        with pytest.raises(GraphError):
            MachineLayout(
                "m", [_component("c")],
                [AirRegion("in"), AirRegion("out")],
                [],
                [AirEdge("in", "out", 1.0), AirEdge("in", "c", 0.0)],
                inlet="in", exhaust="out",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_fraction_conservation_enforced(self):
        with pytest.raises(AirFlowConservationError) as info:
            MachineLayout(
                "m", [],
                [AirRegion("in"), AirRegion("mid"), AirRegion("out")],
                [],
                [AirEdge("in", "mid", 0.5), AirEdge("mid", "out", 1.0)],
                inlet="in", exhaust="out",
                inlet_temperature=20.0, fan_cfm=10.0,
            )
        assert info.value.name == "in"
        assert info.value.total == pytest.approx(0.5)

    def test_exhaust_with_outgoing_air_rejected(self):
        with pytest.raises(GraphError):
            MachineLayout(
                "m", [],
                [AirRegion("in"), AirRegion("out")],
                [],
                [AirEdge("in", "out", 1.0), AirEdge("out", "in", 1.0)],
                inlet="in", exhaust="out",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_air_cycle_rejected(self):
        with pytest.raises(GraphError):
            MachineLayout(
                "m", [],
                [AirRegion("in"), AirRegion("a"), AirRegion("b"), AirRegion("out")],
                [],
                [
                    AirEdge("in", "a", 1.0),
                    AirEdge("a", "b", 1.0),
                    AirEdge("b", "a", 0.5),
                    AirEdge("b", "out", 0.5),
                ],
                inlet="in", exhaust="out",
                inlet_temperature=20.0, fan_cfm=10.0,
            )

    def test_subzero_inlet_temperature_rejected(self):
        with pytest.raises(ValueError):
            make_tiny_layout(inlet_temperature=-300.0)

    def test_nonpositive_fan_rejected(self):
        with pytest.raises(ValueError):
            make_tiny_layout(fan_cfm=0.0)


class TestAirFlowRates:
    def test_inlet_carries_fan_flow(self, layout):
        flows = layout.air_flow_rates()
        assert flows[table1.INLET] == pytest.approx(units.cfm_to_m3s(table1.FAN_CFM))

    def test_flow_conserved_to_exhaust(self, layout):
        flows = layout.air_flow_rates()
        assert flows[table1.EXHAUST] == pytest.approx(flows[table1.INLET], rel=1e-9)

    def test_split_fractions(self, layout):
        flows = layout.air_flow_rates()
        assert flows[table1.DISK_AIR] == pytest.approx(0.4 * flows[table1.INLET])
        assert flows[table1.PS_AIR] == pytest.approx(0.5 * flows[table1.INLET])

    def test_cpu_air_combines_ps_and_void_paths(self, layout):
        flows = layout.air_flow_rates()
        inlet = flows[table1.INLET]
        # PS downstream contributes 0.5*0.15; void space contributes
        # (0.1 + 0.4 + 0.5*0.85) * 0.05.
        expected = inlet * (0.5 * 0.15 + (0.1 + 0.4 + 0.5 * 0.85) * 0.05)
        assert flows[table1.CPU_AIR] == pytest.approx(expected)

    def test_fan_override(self, layout):
        base = layout.air_flow_rates()
        doubled = layout.air_flow_rates(fan_cfm=2 * table1.FAN_CFM)
        for region in base:
            assert doubled[region] == pytest.approx(2 * base[region])

    def test_fraction_override(self, tiny_layout):
        # Overriding a fraction shifts flow without touching the layout.
        flows = tiny_layout.air_flow_rates(fractions={("in", "mid"): 0.5})
        assert flows["mid"] == pytest.approx(0.5 * flows["in"])
        assert tiny_layout.air_edges[0].fraction == 1.0


class TestQueries:
    def test_heat_edges_of(self, layout):
        edges = layout.heat_edges_of(table1.CPU)
        others = sorted(e.other(table1.CPU) for e in edges)
        assert others == [table1.CPU_AIR, table1.MOTHERBOARD]

    def test_heat_edges_of_unknown_raises(self, layout):
        with pytest.raises(UnknownNodeError):
            layout.heat_edges_of("ghost")

    def test_incoming_air(self, layout):
        incoming = layout.incoming_air(table1.CPU_AIR)
        sources = sorted(e.src for e in incoming)
        assert sources == [table1.PS_AIR_DOWN, table1.VOID_AIR]

    def test_air_order_respects_edges(self, layout):
        order = {name: i for i, name in enumerate(layout.air_order)}
        for edge in layout.air_edges:
            assert order[edge.src] < order[edge.dst]

    def test_repr(self, layout):
        assert "machine1" in repr(layout)


class TestClusterLayout:
    def test_validation_cluster_builds(self, cluster):
        assert len(cluster.machines) == 4
        assert table1.AC in cluster.sources

    def test_incoming(self, cluster):
        edges = cluster.incoming("machine2")
        assert len(edges) == 1
        assert edges[0].src == table1.AC
        assert edges[0].fraction == pytest.approx(0.25)

    def test_incoming_unknown_machine(self, cluster):
        with pytest.raises(UnknownNodeError):
            cluster.incoming("machine9")

    def test_fraction_conservation(self):
        machines = [make_tiny_layout("m1"), make_tiny_layout("m2")]
        with pytest.raises(AirFlowConservationError):
            ClusterLayout(
                machines=machines,
                sources=[CoolingSource("ac", 20.0)],
                edges=[
                    ClusterAirEdge("ac", "m1", 0.5),
                    ClusterAirEdge("ac", "m2", 0.4),  # sums to 0.9
                    ClusterAirEdge("m1", "Cluster Exhaust", 1.0),
                    ClusterAirEdge("m2", "Cluster Exhaust", 1.0),
                ],
            )

    def test_sink_cannot_emit(self):
        machines = [make_tiny_layout("m1")]
        with pytest.raises(GraphError):
            ClusterLayout(
                machines=machines,
                sources=[CoolingSource("ac", 20.0)],
                edges=[
                    ClusterAirEdge("ac", "m1", 1.0),
                    ClusterAirEdge("m1", "Cluster Exhaust", 1.0),
                    ClusterAirEdge("Cluster Exhaust", "m1", 1.0),
                ],
            )

    def test_source_cannot_receive(self):
        machines = [make_tiny_layout("m1")]
        with pytest.raises(GraphError):
            ClusterLayout(
                machines=machines,
                sources=[CoolingSource("ac", 20.0)],
                edges=[
                    ClusterAirEdge("ac", "m1", 1.0),
                    ClusterAirEdge("m1", "ac", 1.0),
                ],
            )

    def test_duplicate_machine_rejected(self):
        with pytest.raises(DuplicateNodeError):
            ClusterLayout(
                machines=[make_tiny_layout("m1"), make_tiny_layout("m1")],
                sources=[],
                edges=[],
            )

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(UnknownNodeError):
            ClusterLayout(
                machines=[make_tiny_layout("m1")],
                sources=[CoolingSource("ac", 20.0)],
                edges=[ClusterAirEdge("ac", "ghost", 1.0)],
            )
