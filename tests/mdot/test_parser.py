"""Tests for the mdot recursive-descent parser."""

import pytest

from repro.errors import MdotSyntaxError
from repro.mdot.parser import parse

MACHINE = '''
machine "m1" {
  inlet = "In";
  exhaust = "Out";
  inlet_temperature = 21.6;
  fan_cfm = 38.6;
  component "CPU" [mass=0.151, specific_heat=896, p_base=7, p_max=31,
                   monitored=true];
  air "In";
  air "Out";
  air "CPU Air";
  "CPU" -- "CPU Air" [k=0.75];
  "In" -> "CPU Air" [fraction=1.0];
  "CPU Air" -> "Out" [fraction=1.0];
}
'''

CLUSTER = '''
cluster {
  source "AC" [temperature=21.6];
  sink "Cluster Exhaust";
  "AC" -> "m1" [fraction=1.0];
  "m1" -> "Cluster Exhaust" [fraction=1.0];
}
'''


class TestMachineBlocks:
    def test_parses_structure(self):
        tree = parse(MACHINE)
        assert len(tree.machines) == 1
        block = tree.machines[0]
        assert block.name == "m1"
        assert len(block.components) == 1
        assert len(block.airs) == 3
        assert len(block.edges) == 3
        assert set(block.props) == {
            "inlet", "exhaust", "inlet_temperature", "fan_cfm"
        }

    def test_component_attrs(self):
        component = parse(MACHINE).machines[0].components[0]
        assert component.name == "CPU"
        assert component.attrs["mass"].value == pytest.approx(0.151)
        assert component.attrs["monitored"].value is True

    def test_edge_direction(self):
        edges = parse(MACHINE).machines[0].edges
        heat = [e for e in edges if not e.directed]
        air = [e for e in edges if e.directed]
        assert len(heat) == 1 and heat[0].attrs["k"].value == pytest.approx(0.75)
        assert len(air) == 2

    def test_multiple_machines(self):
        tree = parse(MACHINE + MACHINE.replace('"m1"', '"m2"'))
        assert [m.name for m in tree.machines] == ["m1", "m2"]

    def test_empty_machine_block(self):
        tree = parse('machine "empty" { }')
        assert tree.machines[0].components == []


class TestClusterBlocks:
    def test_parses_cluster(self):
        tree = parse(MACHINE + CLUSTER)
        cluster = tree.cluster
        assert cluster is not None
        assert cluster.sources[0].name == "AC"
        assert cluster.sinks[0].name == "Cluster Exhaust"
        assert len(cluster.edges) == 2

    def test_two_cluster_blocks_rejected(self):
        with pytest.raises(MdotSyntaxError):
            parse(CLUSTER + CLUSTER)

    def test_undirected_cluster_edge_rejected(self):
        with pytest.raises(MdotSyntaxError):
            parse('cluster { "a" -- "b" [fraction=1.0]; }')


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            'machine { }',                        # missing name
            'machine "m" {',                      # unterminated block
            'machine "m" { component ; }',        # missing component name
            'machine "m" { "a" "b"; }',           # missing edge operator
            'machine "m" { "a" -- "b" [k]; }',    # attr without value
            'machine "m" { "a" -- "b" [k=1; }',   # unterminated attrs
            'machine "m" { inlet = ; }',          # missing value
            'nonsense',                           # unknown top-level word
            'machine "m" { component "c" [k=1, k=2]; }',  # duplicate attr
            'machine "m" { inlet = "a"; inlet = "b"; }',  # duplicate prop
            'cluster { source ; }',               # missing source name
            'cluster { blah; }',                  # unknown statement
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(MdotSyntaxError):
            parse(source)

    def test_error_mentions_position(self):
        with pytest.raises(MdotSyntaxError) as info:
            parse('machine "m" {\n  component ;\n}')
        assert "line 2" in str(info.value)


class TestAttrLists:
    def test_empty_attrs_means_no_brackets_needed(self):
        tree = parse('machine "m" { air "a"; }')
        assert tree.machines[0].airs[0].name == "a"

    def test_string_attr_value(self):
        tree = parse('machine "m" { component "c" [mass=1, specific_heat=1, power=0]; }')
        assert tree.machines[0].components[0].attrs["power"].value == 0.0

    def test_bool_attr_value(self):
        tree = parse(
            'machine "m" { component "c" '
            "[mass=1, specific_heat=1, power=0, monitored=false]; }"
        )
        assert tree.machines[0].components[0].attrs["monitored"].value is False
