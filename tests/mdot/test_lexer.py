"""Tests for the mdot tokenizer."""

import pytest

from repro.errors import MdotSyntaxError
from repro.mdot import lexer


def kinds(source):
    return [t.kind for t in lexer.tokenize(source)]


def values(source):
    return [t.value for t in lexer.tokenize(source)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_source_is_just_eof(self):
        tokens = lexer.tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == lexer.EOF

    def test_punctuation(self):
        assert values("{ } [ ] = , ;") == ["{", "}", "[", "]", "=", ",", ";"]

    def test_edge_operators(self):
        assert values("-- ->") == ["--", "->"]

    def test_identifier(self):
        tokens = lexer.tokenize("machine fan_cfm")
        assert tokens[0].kind == lexer.IDENT
        assert tokens[0].value == "machine"
        assert tokens[1].value == "fan_cfm"

    def test_booleans(self):
        tokens = lexer.tokenize("true false")
        assert tokens[0].kind == lexer.BOOL and tokens[0].value is True
        assert tokens[1].kind == lexer.BOOL and tokens[1].value is False


class TestNumbers:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0.0),
            ("42", 42.0),
            ("21.6", 21.6),
            ("-5", -5.0),
            ("+3.5", 3.5),
            (".5", 0.5),
            ("1e3", 1000.0),
            ("2.5e-2", 0.025),
        ],
    )
    def test_number_forms(self, text, expected):
        tokens = lexer.tokenize(text)
        assert tokens[0].kind == lexer.NUMBER
        assert tokens[0].value == pytest.approx(expected)

    def test_number_followed_by_punct(self):
        assert values("k=0.75;") == ["k", "=", 0.75, ";"]

    def test_negative_fraction_in_attr(self):
        assert values("x=-0.5") == ["x", "=", -0.5]


class TestStrings:
    def test_simple(self):
        tokens = lexer.tokenize('"CPU Air"')
        assert tokens[0].kind == lexer.STRING
        assert tokens[0].value == "CPU Air"

    def test_escapes(self):
        assert lexer.tokenize(r'"a\"b\\c\nd\te"')[0].value == 'a"b\\c\nd\te'

    def test_unterminated(self):
        with pytest.raises(MdotSyntaxError):
            lexer.tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(MdotSyntaxError):
            lexer.tokenize('"a\nb"')

    def test_bad_escape(self):
        with pytest.raises(MdotSyntaxError):
            lexer.tokenize(r'"a\qb"')


class TestCommentsAndWhitespace:
    def test_hash_comment(self):
        assert values("# a comment\nmachine") == ["machine"]

    def test_slash_comment(self):
        assert values("// comment\nair") == ["air"]

    def test_comment_to_end_of_line_only(self):
        assert values("a # comment\nb") == ["a", "b"]

    def test_whitespace_ignored(self):
        assert values("  a \t b \r\n c ") == ["a", "b", "c"]


class TestPositions:
    def test_line_and_column(self):
        tokens = lexer.tokenize('machine\n  "x"')
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(MdotSyntaxError) as info:
            lexer.tokenize("machine\n  @")
        assert info.value.line == 2
        assert info.value.column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(MdotSyntaxError):
            lexer.tokenize("%")
