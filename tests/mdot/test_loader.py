"""Tests for mdot semantic loading into layout objects."""

import pytest

from repro.core.power import ConstantPowerModel, LinearPowerModel
from repro.errors import AirFlowConservationError, MdotSemanticError
from repro.mdot.loader import load_file, loads

GOOD = '''
machine "m1" {
  inlet = "In";
  exhaust = "Out";
  inlet_temperature = 21.6;
  fan_cfm = 38.6;
  component "CPU" [mass=0.151, specific_heat=896, p_base=7, p_max=31,
                   monitored=true];
  component "PSU" [mass=1.6, specific_heat=896, power=40];
  air "In";
  air "Out";
  air "CPU Air";
  "CPU" -- "CPU Air" [k=0.75];
  "In" -> "CPU Air" [fraction=1.0];
  "CPU Air" -> "Out" [fraction=1.0];
}
'''

CLUSTER = '''
cluster {
  source "AC" [temperature=21.6];
  sink "Cluster Exhaust";
  "AC" -> "m1" [fraction=1.0];
  "m1" -> "Cluster Exhaust" [fraction=1.0];
}
'''


class TestLoadMachine:
    def test_loads_layout(self):
        machines, cluster = loads(GOOD)
        assert cluster is None
        layout = machines[0]
        assert layout.name == "m1"
        assert layout.inlet == "In"
        assert layout.fan_cfm == pytest.approx(38.6)
        assert layout.components["CPU"].monitored is True

    def test_power_models(self):
        layout = loads(GOOD)[0][0]
        assert isinstance(layout.components["CPU"].power_model, LinearPowerModel)
        assert isinstance(layout.components["PSU"].power_model, ConstantPowerModel)
        assert layout.components["PSU"].power_model.power(0.5) == 40.0

    def test_equal_p_base_p_max_becomes_constant(self):
        source = GOOD.replace("p_base=7, p_max=31", "p_base=5, p_max=5")
        layout = loads(source)[0][0]
        assert isinstance(layout.components["CPU"].power_model, ConstantPowerModel)

    def test_missing_property(self):
        with pytest.raises(MdotSemanticError):
            loads(GOOD.replace('fan_cfm = 38.6;', ''))

    def test_unknown_property(self):
        with pytest.raises(MdotSemanticError):
            loads(GOOD.replace('fan_cfm = 38.6;', 'fan_cfm = 38.6;\n  wings = 2;'))

    def test_wrong_property_type(self):
        with pytest.raises(MdotSemanticError):
            loads(GOOD.replace('inlet = "In";', 'inlet = 5;'))

    def test_component_missing_mass(self):
        bad = GOOD.replace("mass=0.151, ", "")
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_component_unknown_attr(self):
        bad = GOOD.replace("monitored=true", "monitored=true, rpm=7200")
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_component_power_conflict(self):
        bad = GOOD.replace("p_base=7, p_max=31", "p_base=7, p_max=31, power=10")
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_component_power_missing(self):
        bad = GOOD.replace("p_base=7, p_max=31,", "")
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_heat_edge_needs_k(self):
        bad = GOOD.replace('[k=0.75]', '')
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_air_edge_needs_fraction(self):
        bad = GOOD.replace('"In" -> "CPU Air" [fraction=1.0];', '"In" -> "CPU Air";')
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_boolean_not_a_number(self):
        bad = GOOD.replace("mass=0.151", "mass=true")
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_structural_validation_delegated(self):
        # Fractions summing to 0.5 pass parsing but fail layout validation.
        bad = GOOD.replace('"In" -> "CPU Air" [fraction=1.0];',
                           '"In" -> "CPU Air" [fraction=0.5];')
        with pytest.raises(AirFlowConservationError):
            loads(bad)


class TestLoadCluster:
    def test_loads_cluster(self):
        machines, cluster = loads(GOOD + CLUSTER)
        assert cluster is not None
        assert cluster.sources["AC"].supply_temperature == pytest.approx(21.6)
        assert "m1" in cluster.machines

    def test_source_flow_attr(self):
        source = CLUSTER.replace(
            '[temperature=21.6]', '[temperature=21.6, flow=0.5]'
        )
        _, cluster = loads(GOOD + source)
        assert cluster.sources["AC"].flow_m3s == pytest.approx(0.5)

    def test_source_missing_temperature(self):
        bad = CLUSTER.replace('[temperature=21.6]', '')
        with pytest.raises(MdotSemanticError):
            loads(GOOD + bad)

    def test_cluster_without_machines(self):
        with pytest.raises(MdotSemanticError):
            loads(CLUSTER)

    def test_cluster_without_sink(self):
        bad = GOOD + '''
cluster {
  source "AC" [temperature=21.6];
  "AC" -> "m1" [fraction=1.0];
  "m1" -> "AC" [fraction=1.0];
}
'''
        with pytest.raises(MdotSemanticError):
            loads(bad)

    def test_cluster_edge_needs_fraction(self):
        bad = CLUSTER.replace('"AC" -> "m1" [fraction=1.0];', '"AC" -> "m1";')
        with pytest.raises(MdotSemanticError):
            loads(GOOD + bad)


class TestLoadFile:
    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "system.mdot"
        path.write_text(GOOD + CLUSTER)
        machines, cluster = load_file(path)
        assert machines[0].name == "m1"
        assert cluster is not None
