"""Tests for mdot serialization: round trips and graphviz export."""

import pytest
from hypothesis import given, strategies as st

from repro.config.layouts import validation_cluster, validation_machine
from repro.mdot.loader import loads
from repro.mdot.writer import dump_cluster, dump_machine, dumps, to_graphviz
from tests.conftest import make_tiny_layout


def assert_layouts_equal(a, b):
    assert a.name == b.name
    assert a.inlet == b.inlet
    assert a.exhaust == b.exhaust
    assert a.inlet_temperature == pytest.approx(b.inlet_temperature)
    assert a.fan_cfm == pytest.approx(b.fan_cfm)
    assert set(a.components) == set(b.components)
    for name in a.components:
        ca, cb = a.components[name], b.components[name]
        assert ca.mass == pytest.approx(cb.mass)
        assert ca.specific_heat == pytest.approx(cb.specific_heat)
        assert ca.monitored == cb.monitored
        assert ca.power_model.idle_power == pytest.approx(cb.power_model.idle_power)
        assert ca.power_model.max_power == pytest.approx(cb.power_model.max_power)
    assert {e.key: e.k for e in a.heat_edges} == pytest.approx(
        {e.key: e.k for e in b.heat_edges}
    )
    assert {(e.src, e.dst): e.fraction for e in a.air_edges} == pytest.approx(
        {(e.src, e.dst): e.fraction for e in b.air_edges}
    )


class TestRoundTrip:
    def test_validation_machine(self):
        layout = validation_machine()
        machines, _ = loads(dump_machine(layout))
        assert_layouts_equal(layout, machines[0])

    def test_tiny_layout(self):
        layout = make_tiny_layout()
        machines, _ = loads(dump_machine(layout))
        assert_layouts_equal(layout, machines[0])

    def test_full_cluster(self):
        cluster = validation_cluster()
        text = dumps(list(cluster.machines.values()), cluster)
        machines, loaded = loads(text)
        assert loaded is not None
        assert set(loaded.machines) == set(cluster.machines)
        assert loaded.sources["AC"].supply_temperature == pytest.approx(21.6)
        assert len(loaded.edges) == len(cluster.edges)
        for original in cluster.machines.values():
            match = loaded.machines[original.name]
            assert_layouts_equal(original, match)

    @given(
        k=st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
        inlet=st.floats(min_value=5.0, max_value=45.0, allow_nan=False),
        fan=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )
    def test_round_trip_property(self, k, inlet, fan):
        layout = make_tiny_layout(k=k, inlet_temperature=inlet, fan_cfm=fan)
        machines, _ = loads(dump_machine(layout))
        assert_layouts_equal(layout, machines[0])

    def test_names_with_quotes_survive(self):
        layout = make_tiny_layout(name='we "love" dots')
        machines, _ = loads(dump_machine(layout))
        assert machines[0].name == 'we "love" dots'


class TestGraphviz:
    def test_valid_digraph_shape(self):
        text = to_graphviz(validation_machine())
        assert text.startswith('digraph "machine1" {')
        assert text.rstrip().endswith("}")

    def test_all_nodes_present(self):
        layout = validation_machine()
        text = to_graphviz(layout)
        for name in layout.node_names:
            assert f'"{name}"' in text

    def test_heat_edges_undirected_red(self):
        text = to_graphviz(validation_machine())
        assert "dir=none" in text
        assert "color=red" in text

    def test_air_edges_labelled_with_fraction(self):
        text = to_graphviz(validation_machine())
        assert 'label="0.4"' in text  # Inlet -> Disk Air


class TestDumpCluster:
    def test_contains_sources_and_sinks(self):
        cluster = validation_cluster()
        text = dump_cluster(cluster)
        assert 'source "AC" [temperature=21.6];' in text
        assert 'sink "Cluster Exhaust";' in text
