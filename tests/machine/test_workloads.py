"""Tests for the benchmark workload generators."""

import pytest

from repro.config import table1
from repro.machine.workloads import (
    ConstantWorkload,
    MixedBenchmark,
    Phase,
    StepWorkload,
    cpu_microbenchmark,
    disk_microbenchmark,
)


class TestStepWorkload:
    def test_phases_in_order(self):
        workload = StepWorkload(
            [Phase(10.0, {"a": 0.1}), Phase(5.0, {"a": 0.9})]
        )
        assert workload.utilizations(0.0) == {"a": 0.1}
        assert workload.utilizations(9.99) == {"a": 0.1}
        assert workload.utilizations(10.0) == {"a": 0.9}
        assert workload.duration == 15.0

    def test_idle_outside_range(self):
        workload = StepWorkload([Phase(10.0, {"a": 0.5})])
        assert workload.utilizations(-1.0) == {}
        assert workload.utilizations(10.0) == {}

    def test_requires_phases(self):
        with pytest.raises(ValueError):
            StepWorkload([])

    def test_rejects_nonpositive_phase(self):
        with pytest.raises(ValueError):
            StepWorkload([Phase(0.0, {})])


class TestMicrobenchmarks:
    def test_cpu_microbenchmark_alternates_busy_idle(self):
        workload = cpu_microbenchmark(
            levels=(0.5, 1.0), busy_length=100.0, idle_length=50.0
        )
        assert workload.utilizations(10.0)[table1.CPU] == 0.5
        assert workload.utilizations(120.0)[table1.CPU] == 0.0
        assert workload.utilizations(160.0)[table1.CPU] == 1.0
        assert workload.duration == 300.0

    def test_cpu_microbenchmark_keeps_disk_idle(self):
        workload = cpu_microbenchmark()
        assert workload.utilizations(100.0)[table1.DISK_PLATTERS] == 0.0

    def test_disk_microbenchmark_keeps_cpu_idle(self):
        workload = disk_microbenchmark()
        sample = workload.utilizations(100.0)
        assert sample[table1.CPU] == 0.0
        assert sample[table1.DISK_PLATTERS] > 0.0

    def test_default_duration_is_paper_scale(self):
        # The paper's calibration runs span ~14,000 seconds.
        assert cpu_microbenchmark().duration == pytest.approx(13800.0)


class TestMixedBenchmark:
    def test_deterministic_under_seed(self):
        a = MixedBenchmark(duration=1000.0, seed=5)
        b = MixedBenchmark(duration=1000.0, seed=5)
        for t in range(0, 1000, 37):
            assert a.utilizations(float(t)) == b.utilizations(float(t))

    def test_different_seeds_differ(self):
        a = MixedBenchmark(duration=1000.0, seed=1)
        b = MixedBenchmark(duration=1000.0, seed=2)
        diffs = sum(
            a.utilizations(float(t)) != b.utilizations(float(t))
            for t in range(0, 1000, 37)
        )
        assert diffs > 5

    def test_exercises_both_components(self):
        workload = MixedBenchmark(duration=3000.0, seed=7)
        cpu_values = set()
        disk_values = set()
        for t in range(0, 3000, 25):
            sample = workload.utilizations(float(t))
            cpu_values.add(round(sample[table1.CPU], 3))
            disk_values.add(round(sample[table1.DISK_PLATTERS], 3))
        # "widely different utilizations over time"
        assert len(cpu_values) > 10
        assert len(disk_values) > 10
        assert max(cpu_values) > 0.9
        assert min(cpu_values) < 0.1

    def test_changes_quickly(self):
        workload = MixedBenchmark(duration=2000.0, seed=7)
        changes = 0
        last = None
        for t in range(0, 2000, 10):
            sample = workload.utilizations(float(t))
            if last is not None and sample != last:
                changes += 1
            last = sample
        # Phases are 30-90 s, so 2000 s should see ~20-60 changes.
        assert changes >= 15

    def test_idle_after_duration(self):
        workload = MixedBenchmark(duration=100.0, seed=1)
        assert workload.utilizations(100.0) == {}

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            MixedBenchmark(duration=0.0)


class TestConstantWorkload:
    def test_constant_forever(self):
        workload = ConstantWorkload({"x": 0.4})
        assert workload.utilizations(0.0) == {"x": 0.4}
        assert workload.utilizations(1e9) == {"x": 0.4}

    def test_finite_duration(self):
        workload = ConstantWorkload({"x": 0.4}, duration=10.0)
        assert workload.utilizations(9.9) == {"x": 0.4}
        assert workload.utilizations(10.0) == {}
