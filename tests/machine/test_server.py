"""Tests for the assembled SimulatedServer."""

import pytest

from repro.config import table1
from repro.machine.server import SimulatedServer
from repro.machine.workloads import ConstantWorkload, cpu_microbenchmark


class TestStepping:
    def test_workload_drives_utilization(self, layout):
        server = SimulatedServer(
            layout, workload=ConstantWorkload({table1.CPU: 0.8})
        )
        assert server.current_utilizations()[table1.CPU] == 0.8
        assert server.current_utilizations()[table1.DISK_PLATTERS] == 0.0

    def test_manual_mode_without_workload(self, layout):
        server = SimulatedServer(layout)
        server.set_utilization(table1.CPU, 0.3)
        assert server.current_utilizations()[table1.CPU] == 0.3

    def test_manual_set_rejects_unknown(self, layout):
        server = SimulatedServer(layout)
        with pytest.raises(KeyError):
            server.set_utilization("ghost", 0.5)
        with pytest.raises(ValueError):
            server.set_utilization(table1.CPU, 2.0)

    def test_step_advances_time_and_heat(self, layout):
        server = SimulatedServer(
            layout, workload=ConstantWorkload({table1.CPU: 1.0})
        )
        server.run(2000.0)
        assert server.time == pytest.approx(2000.0)
        assert server.true_temperature(table1.CPU) > 35.0

    def test_step_rejects_nonpositive_dt(self, layout):
        server = SimulatedServer(layout)
        with pytest.raises(ValueError):
            server.step(0.0)

    def test_procfs_tracks_workload(self, layout):
        from repro.machine.procfs import ProcReader

        server = SimulatedServer(
            layout, workload=ConstantWorkload({table1.CPU: 0.6})
        )
        reader = ProcReader(server.procfs)
        server.run(10.0)
        assert reader.sample()[table1.CPU] == pytest.approx(0.6, abs=0.01)

    def test_workload_schedule_respected(self, layout):
        server = SimulatedServer(
            layout,
            workload=cpu_microbenchmark(
                levels=(1.0,), busy_length=50.0, idle_length=50.0
            ),
        )
        server.run(25.0)
        busy = server.current_utilizations()[table1.CPU]
        server.run(50.0)
        idle = server.current_utilizations()[table1.CPU]
        assert busy == 1.0
        assert idle == 0.0


class TestSensors:
    def test_default_sensors_present(self, layout):
        server = SimulatedServer(layout)
        assert set(server.sensors) == {"cpu_air", "disk"}

    def test_sensor_reads_near_truth(self, layout):
        server = SimulatedServer(layout, seed=2)
        server.run(100.0)
        reading = server.read_sensor("disk")
        truth = server.true_temperature(table1.DISK_PLATTERS)
        # Within bias + noise + quantization of the in-disk sensor.
        assert reading == pytest.approx(truth, abs=3.5)

    def test_sensor_noise_varies_readings(self, layout):
        server = SimulatedServer(layout, seed=2)
        readings = {server.read_sensor("cpu_air") for _ in range(50)}
        assert len(readings) > 1

    def test_same_seed_same_bias(self, layout):
        a = SimulatedServer(layout, seed=5)
        b = SimulatedServer(layout, seed=5)
        assert a.sensors["disk"].bias == b.sensors["disk"].bias

    def test_different_seed_different_bias(self, layout):
        a = SimulatedServer(layout, seed=5)
        b = SimulatedServer(layout, seed=6)
        assert a.sensors["disk"].bias != b.sensors["disk"].bias


class TestEnvironmentControls:
    def test_inlet_temperature(self, layout):
        server = SimulatedServer(layout)
        server.set_inlet_temperature(38.6)
        server.run(2000.0)
        assert server.true_temperature(table1.INLET) == pytest.approx(38.6)

    def test_fan_change(self, layout):
        hot = SimulatedServer(
            layout, workload=ConstantWorkload({table1.CPU: 1.0})
        )
        hot.set_fan_cfm(10.0)  # weak fan
        hot.run(4000.0)
        normal = SimulatedServer(
            layout, workload=ConstantWorkload({table1.CPU: 1.0})
        )
        normal.run(4000.0)
        assert hot.true_temperature(table1.CPU) > normal.true_temperature(
            table1.CPU
        ) + 2.0

    def test_counters_optional(self, layout):
        assert SimulatedServer(layout).counters is None
        assert SimulatedServer(layout, with_counters=True).counters is not None

    def test_counters_accumulate_with_cpu(self, layout):
        server = SimulatedServer(
            layout,
            workload=ConstantWorkload({table1.CPU: 1.0}),
            with_counters=True,
        )
        server.run(5.0)
        assert server.counters.read().cycles > 0
