"""Tests for the simulated /proc accounting and its reader."""

import pytest

from repro.machine.procfs import (
    JIFFIES_PER_SECOND,
    ProcReader,
    SimulatedProcFS,
)


@pytest.fixture
def procfs():
    return SimulatedProcFS(["cpu", "disk"])


class TestSimulatedProcFS:
    def test_counters_accumulate(self, procfs):
        procfs.accumulate({"cpu": 0.5}, 2.0)
        snap = procfs.snapshot()
        assert snap.busy_jiffies["cpu"] == pytest.approx(
            0.5 * 2.0 * JIFFIES_PER_SECOND
        )
        assert snap.busy_jiffies["disk"] == 0.0
        assert snap.time == 2.0

    def test_counters_monotone(self, procfs):
        procfs.accumulate({"cpu": 1.0}, 1.0)
        first = procfs.snapshot()
        procfs.accumulate({"cpu": 0.0}, 1.0)
        second = procfs.snapshot()
        assert second.busy_jiffies["cpu"] >= first.busy_jiffies["cpu"]
        assert second.time > first.time

    def test_unknown_components_ignored(self, procfs):
        procfs.accumulate({"gpu": 1.0}, 1.0)
        assert "gpu" not in procfs.snapshot().busy_jiffies

    def test_rejects_negative_dt(self, procfs):
        with pytest.raises(ValueError):
            procfs.accumulate({}, -1.0)

    def test_rejects_bad_utilization(self, procfs):
        with pytest.raises(ValueError):
            procfs.accumulate({"cpu": 1.5}, 1.0)

    def test_components_listing(self, procfs):
        assert procfs.components == ["cpu", "disk"]


class TestProcReader:
    def test_interval_utilization(self, procfs):
        reader = ProcReader(procfs)
        procfs.accumulate({"cpu": 0.7, "disk": 0.2}, 1.0)
        sample = reader.sample()
        assert sample["cpu"] == pytest.approx(0.7)
        assert sample["disk"] == pytest.approx(0.2)

    def test_deltas_not_cumulative(self, procfs):
        reader = ProcReader(procfs)
        procfs.accumulate({"cpu": 1.0}, 1.0)
        reader.sample()
        procfs.accumulate({"cpu": 0.25}, 1.0)
        assert reader.sample()["cpu"] == pytest.approx(0.25)

    def test_mixed_interval_averages(self, procfs):
        reader = ProcReader(procfs)
        procfs.accumulate({"cpu": 1.0}, 1.0)
        procfs.accumulate({"cpu": 0.0}, 3.0)
        assert reader.sample()["cpu"] == pytest.approx(0.25)

    def test_zero_interval_reports_zero(self, procfs):
        reader = ProcReader(procfs)
        assert reader.sample() == {"cpu": 0.0, "disk": 0.0}

    def test_result_clamped(self, procfs):
        reader = ProcReader(procfs)
        procfs.accumulate({"cpu": 1.0}, 1.0)
        sample = reader.sample()
        assert 0.0 <= sample["cpu"] <= 1.0

    def test_two_readers_independent(self, procfs):
        slow = ProcReader(procfs)
        fast = ProcReader(procfs)
        procfs.accumulate({"cpu": 0.5}, 1.0)
        assert fast.sample()["cpu"] == pytest.approx(0.5)
        procfs.accumulate({"cpu": 1.0}, 1.0)
        # The slow reader sees the average over both seconds.
        assert slow.sample()["cpu"] == pytest.approx(0.75)
