"""Tests for the fine-grained ground-truth thermal model."""

import pytest

from repro.config import table1
from repro.machine.groundtruth import (
    DEFAULT_TRUTH,
    GroundTruthServer,
    PhysicalTruth,
)


@pytest.fixture
def ground(layout):
    return GroundTruthServer(layout, internal_dt=0.1)


class TestBasics:
    def test_starts_at_inlet_temperature(self, ground):
        for node in ground.temperatures:
            assert ground.temperature(node) == pytest.approx(21.6)

    def test_heats_under_load(self, ground):
        ground.set_utilization(table1.CPU, 1.0)
        ground.advance(3000.0)
        assert ground.temperature(table1.CPU) > 45.0

    def test_cools_when_idle_again(self, ground):
        ground.set_utilization(table1.CPU, 1.0)
        ground.advance(3000.0)
        hot = ground.temperature(table1.CPU)
        ground.set_utilization(table1.CPU, 0.0)
        ground.advance(3000.0)
        assert ground.temperature(table1.CPU) < hot - 10.0

    def test_inlet_change_propagates(self, ground):
        ground.set_inlet_temperature(38.6)
        ground.advance(3000.0)
        assert ground.temperature(table1.CPU) > 40.0
        assert ground.temperature(table1.EXHAUST) > 35.0

    def test_rejects_bad_utilization(self, ground):
        with pytest.raises(ValueError):
            ground.set_utilization(table1.CPU, 1.5)
        with pytest.raises(KeyError):
            ground.set_utilization("ghost", 0.5)

    def test_rejects_bad_fan(self, ground):
        with pytest.raises(ValueError):
            ground.set_fan_cfm(0.0)

    def test_rejects_bad_internal_dt(self, layout):
        with pytest.raises(ValueError):
            GroundTruthServer(layout, internal_dt=0.0)

    def test_time_advances(self, ground):
        ground.advance(12.5)
        assert ground.time == pytest.approx(12.5)


class TestPhysicalTruth:
    def test_true_k_applies_factor(self):
        truth = PhysicalTruth(k_factors={("a", "b"): 1.2})
        assert truth.true_k(("a", "b"), 2.0) == pytest.approx(2.4)
        assert truth.true_k(("c", "d"), 2.0) == pytest.approx(2.0)

    def test_default_truth_perturbs_every_table1_edge(self, layout):
        keys = {edge.key for edge in layout.heat_edges}
        assert set(DEFAULT_TRUTH.k_factors) == keys
        assert all(f != 1.0 for f in DEFAULT_TRUTH.k_factors.values())


class TestMessiness:
    """The ground truth must be *different* from Mercury, or validating
    Mercury against it would be circular."""

    def test_nonlinear_power_curve(self, layout):
        # At half utilization the true power is below the linear midpoint,
        # so the CPU runs measurably cooler than a linear model predicts.
        ideal = PhysicalTruth(k_factors={}, alpha=0.0, power_linearity=1.0,
                              fan_cfm_error=1.0)
        shaped = PhysicalTruth(k_factors={}, alpha=0.0, power_linearity=0.8,
                               fan_cfm_error=1.0)
        temps = []
        for truth in (ideal, shaped):
            ground = GroundTruthServer(layout, truth=truth, internal_dt=0.5)
            ground.set_utilization(table1.CPU, 0.5)
            ground.advance(6000.0)
            temps.append(ground.temperature(table1.CPU))
        assert temps[1] < temps[0] - 0.5

    def test_temperature_dependent_k(self, layout):
        # With positive alpha, hotter components shed heat more easily:
        # the full-load steady state is cooler than with constant k.
        constant = PhysicalTruth(k_factors={}, alpha=0.0, power_linearity=1.0,
                                 fan_cfm_error=1.0)
        variable = PhysicalTruth(k_factors={}, alpha=0.01, power_linearity=1.0,
                                 fan_cfm_error=1.0)
        temps = []
        for truth in (constant, variable):
            ground = GroundTruthServer(layout, truth=truth, internal_dt=0.5)
            ground.set_utilization(table1.CPU, 1.0)
            ground.advance(6000.0)
            temps.append(ground.temperature(table1.CPU))
        assert temps[1] < temps[0] - 1.0

    def test_fan_error_shifts_temperatures(self, layout):
        nominal = PhysicalTruth(k_factors={}, alpha=0.0, power_linearity=1.0,
                                fan_cfm_error=1.0)
        weak_fan = PhysicalTruth(k_factors={}, alpha=0.0, power_linearity=1.0,
                                 fan_cfm_error=0.7)
        temps = []
        for truth in (nominal, weak_fan):
            ground = GroundTruthServer(layout, truth=truth, internal_dt=0.5)
            ground.set_utilization(table1.CPU, 1.0)
            ground.advance(6000.0)
            temps.append(ground.temperature(table1.EXHAUST))
        assert temps[1] > temps[0] + 0.5

    def test_default_truth_diverges_from_mercury(self, layout):
        # Nominal Mercury vs the default physical truth: a visible but
        # bounded gap (this is exactly what calibration closes).
        from repro.core.solver import Solver

        ground = GroundTruthServer(layout, internal_dt=0.5)
        ground.set_utilization(table1.CPU, 1.0)
        ground.advance(6000.0)
        solver = Solver([layout], record=False)
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.run(6000.0)
        gap = abs(
            ground.temperature(table1.CPU)
            - solver.temperature("machine1", table1.CPU)
        )
        assert 0.5 < gap < 15.0
