"""Tests for the P4-style counters and event-driven energy accounting."""

import pytest

from repro.core.power import LinearPowerModel
from repro.machine.perfcounters import (
    CounterSnapshot,
    CounterUtilizationReporter,
    EnergyEstimator,
    SimulatedPerformanceCounters,
    calibrated_estimator,
)


class TestSimulatedCounters:
    def test_counters_monotone(self):
        counters = SimulatedPerformanceCounters()
        counters.advance(0.5, 1.0)
        first = counters.read()
        counters.advance(0.1, 1.0)
        second = counters.read()
        assert second.cycles >= first.cycles
        assert second.uops >= first.uops
        assert second.time > first.time

    def test_idle_produces_no_events(self):
        counters = SimulatedPerformanceCounters()
        counters.advance(0.0, 10.0)
        snap = counters.read()
        assert snap.cycles == 0.0
        assert snap.uops == 0.0
        assert snap.time == 10.0

    def test_cycles_scale_with_utilization(self):
        counters = SimulatedPerformanceCounters(frequency_hz=1e9)
        counters.advance(0.5, 2.0)
        assert counters.read().cycles == pytest.approx(1e9)

    def test_memory_events_superlinear(self):
        low = SimulatedPerformanceCounters(seed=1)
        high = SimulatedPerformanceCounters(seed=1)
        low.advance(0.5, 10.0)
        high.advance(1.0, 10.0)
        # Doubling utilization quadruples memory refs (quadratic).
        assert high.read().memory_refs == pytest.approx(
            4.0 * low.read().memory_refs, rel=0.01
        )

    def test_rejects_bad_args(self):
        counters = SimulatedPerformanceCounters()
        with pytest.raises(ValueError):
            counters.advance(1.5, 1.0)
        with pytest.raises(ValueError):
            counters.advance(0.5, -1.0)
        with pytest.raises(ValueError):
            SimulatedPerformanceCounters(frequency_hz=0.0)

    def test_delta(self):
        counters = SimulatedPerformanceCounters()
        counters.advance(1.0, 1.0)
        first = counters.read()
        counters.advance(1.0, 1.0)
        delta = counters.read().delta(first)
        assert delta.time == pytest.approx(1.0)
        assert delta.cycles == pytest.approx(first.cycles, rel=0.05)


class TestEnergyEstimator:
    def test_idle_energy_is_base_power(self):
        estimator = EnergyEstimator(idle_power=7.0)
        delta = CounterSnapshot(time=10.0, cycles=0, uops=0, l2_misses=0,
                                memory_refs=0)
        assert estimator.energy(delta) == pytest.approx(70.0)

    def test_events_add_energy(self):
        estimator = EnergyEstimator(idle_power=0.0, uop_nj=10.0)
        delta = CounterSnapshot(time=1.0, cycles=0, uops=1e9, l2_misses=0,
                                memory_refs=0)
        assert estimator.energy(delta) == pytest.approx(10.0)

    def test_average_power(self):
        estimator = EnergyEstimator(idle_power=5.0)
        delta = CounterSnapshot(time=2.0, cycles=0, uops=0, l2_misses=0,
                                memory_refs=0)
        assert estimator.average_power(delta) == pytest.approx(5.0)

    def test_zero_interval_returns_idle(self):
        estimator = EnergyEstimator(idle_power=5.0)
        delta = CounterSnapshot(time=0.0, cycles=0, uops=0, l2_misses=0,
                                memory_refs=0)
        assert estimator.average_power(delta) == 5.0

    def test_negative_interval_rejected(self):
        estimator = EnergyEstimator(idle_power=5.0)
        delta = CounterSnapshot(time=-1.0, cycles=0, uops=0, l2_misses=0,
                                memory_refs=0)
        with pytest.raises(ValueError):
            estimator.energy(delta)


class TestCalibratedPipeline:
    """The full section 2.3 path: counters -> energy -> power -> util."""

    def make_reporter(self, seed=11):
        model = LinearPowerModel(7.0, 31.0)
        counters = SimulatedPerformanceCounters(seed=seed)
        estimator = calibrated_estimator(model, counters, power_linearity=0.92)
        return counters, CounterUtilizationReporter(counters, estimator, model)

    def test_estimated_power_tracks_true_curve(self):
        model = LinearPowerModel(7.0, 31.0)
        for u in (0.0, 0.25, 0.5, 0.75, 1.0):
            counters = SimulatedPerformanceCounters(seed=3)
            estimator = calibrated_estimator(model, counters, 0.92)
            counters.advance(u, 60.0)
            power = estimator.average_power(counters.read().delta(
                CounterSnapshot(0, 0, 0, 0, 0)
            ))
            true = 7.0 + (0.92 * u + 0.08 * u * u) * 24.0
            assert power == pytest.approx(true, abs=0.8)

    def test_low_level_utilization_below_busy_fraction_midrange(self):
        counters, reporter = self.make_reporter()
        counters.advance(0.5, 60.0)
        low_level = reporter.sample()
        # Sub-linear power means the energy-derived utilization is below
        # the 50% busy fraction — the whole point of the counter mode.
        assert low_level < 0.5
        assert low_level == pytest.approx(0.47, abs=0.03)

    def test_extremes_map_to_extremes(self):
        counters, reporter = self.make_reporter()
        counters.advance(0.0, 10.0)
        assert reporter.sample() == pytest.approx(0.0, abs=0.02)
        counters.advance(1.0, 10.0)
        assert reporter.sample() == pytest.approx(1.0, abs=0.05)

    def test_reporter_is_interval_based(self):
        counters, reporter = self.make_reporter()
        counters.advance(1.0, 10.0)
        reporter.sample()
        counters.advance(0.0, 10.0)
        assert reporter.sample() == pytest.approx(0.0, abs=0.02)
