"""Tests for the flattened whole-room solver."""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.solver import Solver
from repro.errors import TopologyError
from repro.topology import FlatSolver, grid_topology

MACHINES = 24


def room():
    return grid_topology(MACHINES, zones=2, machines_per_rack=6)


def reference_solver(topology):
    layouts = [validation_machine(name) for name in topology.machines]
    solver = Solver(layouts, topology=topology, record=False)
    return solver


class TestEquivalence:
    def test_matches_per_machine_solver(self):
        topo = room()
        flat = FlatSolver(topo)
        flat.set_utilization(table1.CPU, 0.65)
        flat.set_utilization(table1.DISK_PLATTERS, 0.3)
        reference = reference_solver(topo)
        for name in topo.machines:
            state = reference.machines[name]
            state.set_utilization(table1.CPU, 0.65)
            state.set_utilization(table1.DISK_PLATTERS, 0.3)
        flat.step(60)
        for _ in range(60):
            reference.step()
        worst = 0.0
        for row, name in enumerate(topo.machines):
            state = reference.machines[name]
            for node in flat.plan.node_names:
                delta = abs(
                    state.temperatures[node]
                    - float(flat.group.T[row, flat.plan.node_index[node]])
                )
                worst = max(worst, delta)
        assert worst <= 1e-9

    def test_inlet_override(self):
        topo = room()
        flat = FlatSolver(topo)
        flat.set_inlet_override("machine1", 45.0)
        flat.step(30)
        inlet_col = flat.plan.node_index[table1.INLET]
        assert float(flat.group.T[0, inlet_col]) == pytest.approx(45.0, abs=2.0)
        flat.set_inlet_override("machine1", None)
        flat.step(200)
        assert float(flat.group.T[0, inlet_col]) < 30.0

    def test_per_machine_utilization(self):
        topo = room()
        flat = FlatSolver(topo)
        util = np.zeros(MACHINES)
        util[0] = 1.0
        flat.set_utilization(table1.CPU, util)
        flat.step(200)
        cpu = flat.node_column(table1.CPU)
        assert cpu[0] > cpu[5] + 5.0

    def test_unknown_names_rejected(self):
        flat = FlatSolver(room())
        with pytest.raises(TopologyError, match="unknown node"):
            flat.node_column("Flux Capacitor")
        with pytest.raises(TopologyError, match="unknown component"):
            flat.set_utilization("Flux Capacitor", 0.5)
        with pytest.raises(TopologyError, match="unknown machine"):
            flat.set_inlet_override("ghost", 30.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(TopologyError, match="dt"):
            FlatSolver(room(), dt=0.0)


class TestCheckpoint:
    def test_bit_exact_resume_through_json(self):
        topo = room()
        flat = FlatSolver(topo)
        flat.set_utilization(table1.CPU, 0.7)
        flat.set_inlet_override("machine3", 35.0)
        flat.operator.set_supply("zone0", 24.0)
        flat.step(40)
        data = json.loads(json.dumps(flat.checkpoint()))

        clone = FlatSolver(topo)
        clone.set_utilization(table1.CPU, 0.7)  # overwritten by restore
        clone.restore(data)
        assert np.array_equal(clone.group.T, flat.group.T)
        assert np.array_equal(clone.prev_exhaust, flat.prev_exhaust)
        assert clone.inlet_overrides == flat.inlet_overrides
        assert clone.time == flat.time

        # The restored room continues bit-for-bit.
        flat.step(40)
        clone.step(40)
        assert np.array_equal(clone.group.T, flat.group.T)

    def test_restore_rejects_wrong_shape(self):
        flat = FlatSolver(room())
        other = FlatSolver(grid_topology(4, zones=2, machines_per_rack=2))
        with pytest.raises(TopologyError, match="shape"):
            flat.restore(other.checkpoint())
