"""Solver integration: topology inlets, fiddle verbs, checkpoints."""

import json

import pytest

from repro.config import table1
from repro.config.layouts import validation_cluster, validation_machine
from repro.core.compiled import have_numpy
from repro.core.solver import Solver
from repro.errors import FiddleError, SolverError, TopologyError
from repro.fiddle.tool import Fiddle
from repro.topology import grid_topology

MACHINES = 8


def build_solver(engine="python", topology=None):
    if topology is None:
        topology = grid_topology(MACHINES, zones=2, machines_per_rack=4)
    layouts = [validation_machine(name) for name in topology.machines]
    solver = Solver(layouts, topology=topology, engine=engine, record=False)
    for name in topology.machines:
        solver.machines[name].set_utilization(table1.CPU, 0.7)
    return solver


def cpu_temps(solver):
    return {
        name: solver.machines[name].temperatures[table1.CPU]
        for name in solver.machines
    }


class TestSolverTopology:
    def test_recirculation_heats_downstream(self):
        solver = build_solver()
        for _ in range(300):
            solver.step()
        temps = cpu_temps(solver)
        # machine2 re-ingests machine1's exhaust; machine1 sees pure
        # cold-aisle supply, so the downstream machine runs hotter.
        assert temps["machine2"] > temps["machine1"]

    def test_engines_agree(self):
        if not have_numpy():
            pytest.skip("compiled engine needs NumPy")
        py = build_solver("python")
        comp = build_solver("compiled")
        for _ in range(100):
            py.step()
            comp.step()
        for name, value in cpu_temps(py).items():
            assert cpu_temps(comp)[name] == pytest.approx(value, abs=1e-9)

    def test_topology_and_cluster_are_exclusive(self):
        topo = grid_topology(4, zones=2, machines_per_rack=2)
        layouts = [validation_machine(name) for name in topo.machines]
        cluster = validation_cluster(list(topo.machines))
        with pytest.raises(SolverError):
            Solver(layouts, cluster=cluster, topology=topo)

    def test_topology_machines_must_match(self):
        topo = grid_topology(4, zones=2, machines_per_rack=2)
        layouts = [validation_machine("other")]
        with pytest.raises(SolverError):
            Solver(layouts, topology=topo)

    def test_zone_and_recirculation_setters(self):
        solver = build_solver()
        solver.set_zone_supply("zone0", 30.0)
        solver.set_recirculation("machine1", "machine2", 0.2)
        with pytest.raises(TopologyError):
            solver.set_zone_supply("atlantis", 30.0)

    def test_setters_require_topology(self):
        layouts = [validation_machine("m1")]
        solver = Solver(layouts)
        with pytest.raises(SolverError, match="no topology"):
            solver.set_zone_supply("zone0", 30.0)
        with pytest.raises(SolverError, match="no topology"):
            solver.set_recirculation("a", "b", 0.1)


class TestFiddleVerbs:
    def test_zone_verb(self):
        solver = build_solver()
        fiddle = Fiddle(solver)
        fiddle.command("cluster zone zone0 31.5")
        assert solver._topology_op.supply_temperature("zone0") == 31.5
        assert "cluster zone zone0 31.5" in fiddle.log

    def test_recirculation_verb(self):
        solver = build_solver()
        fiddle = Fiddle(solver)
        fiddle.command("cluster recirculation machine1 machine2 0.15")
        assert solver._topology_op.weight("machine1", "machine2") == 0.15

    def test_bad_cluster_verb_mentions_new_forms(self):
        solver = build_solver()
        fiddle = Fiddle(solver)
        with pytest.raises(FiddleError, match="cluster zone"):
            fiddle.command("cluster nonsense 1 2")


class TestCheckpoint:
    def test_checkpoint_carries_topology(self):
        solver = build_solver()
        solver.set_zone_supply("zone1", 26.0)
        solver.set_recirculation("machine1", "machine2", 0.13)
        for _ in range(50):
            solver.step()
        data = json.loads(json.dumps(solver.checkpoint()))
        assert data["topology"]["supply_overrides"] == {"zone1": 26.0}
        assert data["topology"]["weights"]["machine1|machine2"] == 0.13

        clone = build_solver()
        clone.restore(data)
        assert clone._topology_op.supply_temperature("zone1") == 26.0
        assert clone._topology_op.weight("machine1", "machine2") == 0.13
        # Bit-exact resume: both solvers walk the same trajectory.
        for _ in range(50):
            solver.step()
            clone.step()
        for name, value in cpu_temps(solver).items():
            assert cpu_temps(clone)[name] == value

    def test_no_topology_key_without_topology(self):
        # Topology-free checkpoints keep their historical shape (golden
        # byte-identity for existing runs).
        layouts = [validation_machine("m1")]
        solver = Solver(layouts)
        assert "topology" not in solver.checkpoint()
