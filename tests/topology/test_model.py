"""Tests for the Topology model: validation, builders, serialization."""

import json

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Position,
    RecirculationEdge,
    Topology,
    Zone,
    grid_topology,
    load_topology,
)


def tiny_topology(edges=()):
    zones = [Zone("cold", 21.6), Zone("warm", 24.0)]
    machines = ["a", "b", "c"]
    positions = {
        "a": Position("cold", 0, 0),
        "b": Position("cold", 0, 1),
        "c": Position("warm", 0, 0),
    }
    return Topology(machines, zones, positions, edges)


class TestValidation:
    def test_builds(self):
        topo = tiny_topology([RecirculationEdge("a", "b", 0.1)])
        assert len(topo) == 3
        assert topo.zone_of("c") == "warm"
        assert topo.supply_temperature("c") == 24.0
        assert topo.zone_members() == {"cold": ["a", "b"], "warm": ["c"]}

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Topology([], [Zone("z", 21.6)], {})

    def test_rejects_duplicate_machine(self):
        with pytest.raises(TopologyError):
            Topology(
                ["a", "a"], [Zone("z", 21.6)],
                {"a": Position("z", 0, 0)},
            )

    def test_rejects_unknown_zone(self):
        with pytest.raises(TopologyError, match="unknown zone"):
            Topology(["a"], [Zone("z", 21.6)], {"a": Position("nope", 0, 0)})

    def test_rejects_position_mismatch(self):
        with pytest.raises(TopologyError, match="positions do not match"):
            Topology(["a", "b"], [Zone("z", 21.6)], {"a": Position("z", 0, 0)})

    def test_rejects_shared_grid_position(self):
        with pytest.raises(TopologyError, match="share grid position"):
            Topology(
                ["a", "b"], [Zone("z", 21.6)],
                {"a": Position("z", 0, 0), "b": Position("z", 0, 0)},
            )

    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError, match="itself"):
            tiny_topology([RecirculationEdge("a", "a", 0.1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(TopologyError, match="duplicate"):
            tiny_topology(
                [RecirculationEdge("a", "b", 0.1),
                 RecirculationEdge("a", "b", 0.2)]
            )

    def test_rejects_unknown_edge_machine(self):
        with pytest.raises(TopologyError, match="unknown machine"):
            tiny_topology([RecirculationEdge("a", "ghost", 0.1)])

    def test_rejects_negative_weight(self):
        with pytest.raises(TopologyError, match=">= 0"):
            tiny_topology([RecirculationEdge("a", "b", -0.1)])

    def test_rejects_overfull_inlet(self):
        # b's incoming weights sum over 1: no supply fraction remains.
        with pytest.raises(TopologyError, match="sum to"):
            tiny_topology(
                [RecirculationEdge("a", "b", 0.6),
                 RecirculationEdge("c", "b", 0.5)]
            )


class TestSerialization:
    def test_round_trip(self):
        topo = tiny_topology(
            [RecirculationEdge("a", "b", 0.1),
             RecirculationEdge("b", "c", 0.05)]
        )
        clone = Topology.from_json(topo.to_json())
        assert clone.machines == topo.machines
        assert clone.positions == topo.positions
        assert clone.recirculation == topo.recirculation
        assert clone.zones == topo.zones
        # Canonical: the JSON text itself round-trips byte-for-byte.
        assert clone.to_json() == topo.to_json()

    def test_rejects_unknown_keys(self):
        data = tiny_topology().to_dict()
        data["racks"] = []
        with pytest.raises(TopologyError, match="unknown topology key"):
            Topology.from_dict(data)

    def test_rejects_malformed(self):
        with pytest.raises(TopologyError, match="invalid topology JSON"):
            Topology.from_json("{nope")
        with pytest.raises(TopologyError, match="must be an object"):
            Topology.from_json("[1,2]")
        with pytest.raises(TopologyError, match="malformed"):
            Topology.from_dict({"zones": {"z": {}}, "machines": {}})

    def test_load_topology(self, tmp_path):
        topo = tiny_topology([RecirculationEdge("a", "b", 0.1)])
        path = tmp_path / "room.json"
        path.write_text(topo.to_json())
        loaded = load_topology(str(path))
        assert loaded.to_json() == topo.to_json()
        with pytest.raises(TopologyError, match="cannot read"):
            load_topology(str(tmp_path / "missing.json"))


class TestGridTopology:
    def test_shape(self):
        topo = grid_topology(40, zones=2, machines_per_rack=10)
        assert len(topo) == 40
        assert sorted(topo.zones) == ["zone0", "zone1"]
        members = topo.zone_members()
        # Racks are dealt round-robin: 4 racks of 10, two per zone.
        assert len(members["zone0"]) == 20
        assert len(members["zone1"]) == 20

    def test_deterministic(self):
        assert (
            grid_topology(100, zones=4).to_json()
            == grid_topology(100, zones=4).to_json()
        )

    def test_couplings(self):
        topo = grid_topology(40, zones=2, machines_per_rack=10,
                             intra_rack=0.08, cross_rack=0.04)
        weights = {(e.src, e.dst): e.weight for e in topo.recirculation}
        # Intra-rack: slot above re-ingests the machine below it.
        assert weights[("machine1", "machine2")] == 0.08
        # Cross-rack: rack 3 (global) couples to rack 1 — same zone.
        assert weights[("machine1", "machine21")] == 0.04
        assert topo.zone_of("machine1") == topo.zone_of("machine21")

    def test_zone_supplies(self):
        topo = grid_topology(
            10, zones=2, machines_per_rack=5,
            zone_supplies={"zone0": 18.0, "zone1": 23.0},
        )
        assert topo.zones["zone0"].supply_temperature == 18.0
        assert topo.zones["zone1"].supply_temperature == 23.0

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            grid_topology(0)
        with pytest.raises(TopologyError):
            grid_topology(10, zones=0)
        with pytest.raises(TopologyError):
            grid_topology(10, intra_rack=0.7, cross_rack=0.5)
