"""Tests for the recirculation operator: scalar/array parity, edits."""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.errors import TopologyError
from repro.topology import (
    Position,
    RecirculationEdge,
    RecirculationOperator,
    Topology,
    Zone,
    grid_topology,
)


def room():
    return grid_topology(30, zones=3, machines_per_rack=5)


def random_exhaust(topology, seed=7):
    rng = np.random.default_rng(seed)
    values = 30.0 + 10.0 * rng.random(len(topology.machines))
    mapping = dict(zip(topology.machines, values.tolist()))
    return values, mapping


class TestEvaluation:
    def test_scalar_matches_array_bitwise(self):
        topo = room()
        op = RecirculationOperator(topo)
        arr, mapping = random_exhaust(topo)
        vec = op.inlets_array(arr)
        for i, name in enumerate(topo.machines):
            # Bitwise: both paths add supply first, then edges in
            # topology edge order.
            assert op.inlet(name, mapping) == vec[i]

    def test_convex_mix(self):
        zones = [Zone("z", 20.0)]
        topo = Topology(
            ["a", "b"], zones,
            {"a": Position("z", 0, 0), "b": Position("z", 0, 1)},
            [RecirculationEdge("a", "b", 0.25)],
        )
        op = RecirculationOperator(topo)
        # a sees pure supply; b mixes 75% supply with 25% of a's exhaust.
        assert op.inlet("a", {"a": 40.0, "b": 40.0}) == 20.0
        assert op.inlet("b", {"a": 40.0, "b": 99.0}) == pytest.approx(
            0.75 * 20.0 + 0.25 * 40.0
        )

    def test_no_edges(self):
        topo = grid_topology(5, zones=1, machines_per_rack=5,
                             intra_rack=0.0, cross_rack=0.0)
        op = RecirculationOperator(topo)
        vec = op.inlets_array(np.full(5, 50.0))
        assert np.array_equal(vec, np.full(5, 21.6))


class TestEdits:
    def test_supply_override(self):
        topo = room()
        op = RecirculationOperator(topo)
        arr, mapping = random_exhaust(topo)
        before = op.inlets_array(arr).copy()
        op.set_supply("zone0", 30.0)
        after = op.inlets_array(arr)
        assert op.supply_temperature("zone0") == 30.0
        members = set(topo.zone_members()["zone0"])
        for i, name in enumerate(topo.machines):
            if name in members:
                assert after[i] > before[i]
            else:
                assert after[i] == before[i]
        with pytest.raises(TopologyError, match="unknown zone"):
            op.set_supply("atlantis", 25.0)

    def test_weight_edit(self):
        topo = room()
        op = RecirculationOperator(topo)
        edge = topo.recirculation[0]
        op.set_weight(edge.src, edge.dst, 0.2)
        assert op.weight(edge.src, edge.dst) == 0.2
        arr, mapping = random_exhaust(topo)
        # Scalar and vectorized stay bitwise equal after the edit.
        vec = op.inlets_array(arr)
        i = op.index[edge.dst]
        assert op.inlet(edge.dst, mapping) == vec[i]

    def test_weight_edit_validation(self):
        topo = room()
        op = RecirculationOperator(topo)
        edge = topo.recirculation[0]
        with pytest.raises(TopologyError, match="no recirculation edge"):
            op.set_weight("machine1", "machine1", 0.1)
        with pytest.raises(TopologyError, match=">= 0"):
            op.set_weight(edge.src, edge.dst, -0.5)
        with pytest.raises(TopologyError, match="sum to"):
            op.set_weight(edge.src, edge.dst, 1.5)


class TestCheckpoint:
    def test_round_trip_through_json(self):
        topo = room()
        op = RecirculationOperator(topo)
        edge = topo.recirculation[3]
        op.set_supply("zone1", 27.5)
        op.set_weight(edge.src, edge.dst, 0.11)
        data = json.loads(json.dumps(op.checkpoint()))
        clone = RecirculationOperator(topo)
        clone.restore(data)
        arr, _ = random_exhaust(topo)
        assert np.array_equal(op.inlets_array(arr), clone.inlets_array(arr))

    def test_restore_validates(self):
        topo = room()
        op = RecirculationOperator(topo)
        good = op.checkpoint()
        bad_zone = json.loads(json.dumps(good))
        bad_zone["supply_overrides"]["atlantis"] = 12.0
        with pytest.raises(TopologyError, match="unknown zone"):
            op.restore(bad_zone)
        bad_edge = json.loads(json.dumps(good))
        bad_edge["weights"]["ghost|machine1"] = 0.1
        with pytest.raises(TopologyError, match="unknown recirculation edge"):
            op.restore(bad_edge)
        missing = json.loads(json.dumps(good))
        missing["weights"].popitem()
        with pytest.raises(TopologyError, match="does not match"):
            op.restore(missing)
