"""Tests for the datacenter-scale simulation harness."""

import json

import pytest

np = pytest.importorskip("numpy")

from repro.errors import TopologyError
from repro.telemetry import Telemetry, parse_prometheus
from repro.topology import ScaleSimulation, grid_topology


def room(n=60, zones=3):
    return grid_topology(n, zones=zones, machines_per_rack=5)


class TestWorkload:
    def test_phase_offsets_decorrelate(self):
        sim = ScaleSimulation(room(), duration=1000.0, phase_spread=0.3)
        rates = sim.offered_rates(600.0)
        # Machines peak at different times, so instantaneous rates vary.
        assert rates.max() - rates.min() > 0.0
        zero_spread = ScaleSimulation(room(), duration=1000.0,
                                      phase_spread=0.0)
        flat_rates = zero_spread.offered_rates(600.0)
        assert flat_rates.max() == flat_rates.min()

    def test_run_summary(self):
        sim = ScaleSimulation(room(), duration=300.0)
        summary = sim.run()
        assert summary["machines"] == 60
        assert summary["zones"] == 3
        assert summary["ticks"] == 300
        assert summary["offered_requests"] > 0.0
        assert set(summary["zone_cpu_max"]) == {"zone0", "zone1", "zone2"}
        for zone, peak in summary["zone_cpu_max"].items():
            assert peak >= summary["zone_cpu_mean"][zone]

    def test_policy_throttles_hot_room(self):
        # A hot supply pushes CPUs over the threshold; the vectorized
        # policy must bite (weights drop) where the no-op policy doesn't.
        hot = grid_topology(20, zones=1, machines_per_rack=5,
                            supply_temperature=55.0)
        managed = ScaleSimulation(hot, duration=900.0, policy="freon")
        managed.step(900)
        unmanaged = ScaleSimulation(hot, duration=900.0, policy="none")
        unmanaged.step(900)
        assert managed.throttle_events > 0
        assert (managed.weights < 1.0).any()
        assert unmanaged.throttle_events == 0
        assert (unmanaged.weights == 1.0).all()

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError, match="policy"):
            ScaleSimulation(room(), policy="overclock")
        with pytest.raises(TopologyError, match="duration"):
            ScaleSimulation(room(), duration=0.0)


class TestTelemetry:
    def test_zone_labels_round_trip(self):
        telemetry = Telemetry()
        sim = ScaleSimulation(room(), duration=240.0, telemetry=telemetry)
        sim.run()
        parsed = parse_prometheus(telemetry.to_prometheus())
        # One labelled series per zone, surviving the text round trip.
        for zone in ("zone0", "zone1", "zone2"):
            key = ("scale_zone_cpu_max_celsius", (("zone", zone),))
            assert key in parsed
            assert parsed[key] > 0.0
        assert parsed[("sim_machines", ())] == 60.0
        assert parsed[("sim_zones", ())] == 3.0

    def test_null_telemetry_costs_nothing(self):
        sim = ScaleSimulation(room(), duration=120.0, telemetry=None)
        sim.run()
        assert not sim.telemetry.enabled


class TestCheckpoint:
    def test_bit_exact_resume(self):
        topo = room()
        sim = ScaleSimulation(topo, duration=600.0)
        sim.step(250)
        data = json.loads(json.dumps(sim.checkpoint()))
        clone = ScaleSimulation(topo, duration=600.0)
        clone.restore(data)
        sim.step(150)
        clone.step(150)
        assert np.array_equal(sim.solver.group.T, clone.solver.group.T)
        assert np.array_equal(sim.weights, clone.weights)
        assert sim.offered_total == clone.offered_total
        assert sim.dropped_total == clone.dropped_total
        assert sim.throttle_events == clone.throttle_events

    def test_version_gate(self):
        sim = ScaleSimulation(room(), duration=60.0)
        data = sim.checkpoint()
        data["version"] = 99
        with pytest.raises(TopologyError, match="version"):
            sim.restore(data)


class TestOfferedRatesShape:
    def test_matches_scalar_diurnal_shape(self):
        from repro.cluster.tracegen import diurnal_shape

        sim = ScaleSimulation(room(), duration=1000.0, phase_spread=0.0)
        valley = sim._valley_rate
        peak = sim._peak_rate
        for t in (0.0, 137.0, 480.0, 600.0, 777.0, 950.0, 999.9):
            rates = sim.offered_rates(t)
            expected = valley + (peak - valley) * diurnal_shape(t, 1000.0)
            assert rates[0] == pytest.approx(expected)

    def test_continuous_at_day_boundary(self):
        # The descent reaches the valley exactly at t=duration, so the
        # phase-wrapped curve has no cliff at the seam.
        sim = ScaleSimulation(room(), duration=1000.0, phase_spread=0.3)
        eps = 1e-9
        before = sim.offered_rates(1000.0 - eps)
        after = sim.offered_rates(0.0)
        assert np.allclose(before, after, rtol=1e-5, atol=1e-5)


class TestCloning:
    def cfg(self, **kw):
        from repro.cluster.lvs import CloningConfig

        return CloningConfig(**kw)

    def test_summary_gains_clone_keys_only_when_configured(self):
        plain = ScaleSimulation(room(), duration=120.0)
        summary = plain.run()
        assert "clone_ticks" not in summary
        assert "shed_ticks" not in summary

        cloned = ScaleSimulation(
            room(), duration=120.0, cloning=self.cfg(clones=2)
        )
        summary = cloned.run()
        assert summary["clone_ticks"] + summary["shed_ticks"] == 120
        assert summary["clone_latency_scale"] == pytest.approx(0.5)

    def test_low_load_room_clones_every_tick(self):
        sim = ScaleSimulation(
            room(), duration=120.0, cloning=self.cfg(clones=2)
        )
        sim.step(120)
        # The diurnal valley sits far below the shed ceiling.
        assert sim.clone_ticks > 0

    def test_checkpoint_roundtrip_preserves_clone_counters(self):
        topo = room()
        cfg = self.cfg(clones=2)
        sim = ScaleSimulation(topo, duration=600.0, cloning=cfg)
        sim.step(200)
        data = json.loads(json.dumps(sim.checkpoint()))
        assert "clone_ticks" in data
        clone = ScaleSimulation(topo, duration=600.0, cloning=cfg)
        clone.restore(data)
        sim.step(100)
        clone.step(100)
        assert sim.clone_ticks == clone.clone_ticks
        assert sim.shed_ticks == clone.shed_ticks
        assert sim.offered_total == clone.offered_total

    def test_classic_checkpoint_has_no_clone_keys(self):
        sim = ScaleSimulation(room(), duration=120.0)
        sim.step(50)
        data = sim.checkpoint()
        assert "clone_ticks" not in data
        assert "shed_ticks" not in data
