"""Sweep-engine integration: topology specs, eviction, crash resume."""

import json

import pytest

from repro.errors import SweepError
from repro.parallel import RunSpec, execute_spec, expand_grid, sweep
from repro.parallel.batch import EVICT_TOPOLOGY, partition_specs
from repro.topology import grid_topology

TOPOLOGY_JSON = grid_topology(6, zones=2, machines_per_rack=3).to_json()


def specs_for(grid_extra=None, **base_extra):
    grid = {
        "base": dict(
            {
                "scenario": "emergency",
                "duration": 150.0,
                "engine": "compiled",
                "topology": TOPOLOGY_JSON,
            },
            **base_extra,
        ),
        "axes": {"policy": ["none", "freon"]},
    }
    if grid_extra:
        grid.update(grid_extra)
    return expand_grid(grid)


class TestSpec:
    def test_machine_names_come_from_topology(self):
        spec = RunSpec(run_id="r", topology=TOPOLOGY_JSON)
        assert spec.machine_names() == [f"machine{i}" for i in range(1, 7)]
        assert spec.load_topology().zones.keys() == {"zone0", "zone1"}

    def test_topology_and_cluster_size_exclusive(self):
        with pytest.raises(SweepError, match="mutually exclusive"):
            RunSpec(run_id="r", topology=TOPOLOGY_JSON, cluster_size=8)

    def test_invalid_topology_fails_at_expansion(self):
        with pytest.raises(SweepError, match="invalid topology"):
            RunSpec(run_id="r", topology="{broken")

    def test_wire_format_omits_unset_topology(self):
        # Topology-free artifacts keep their historical bytes.
        assert "topology" not in RunSpec(run_id="r").to_dict()
        data = RunSpec(run_id="r", topology=TOPOLOGY_JSON).to_dict()
        assert data["topology"] == TOPOLOGY_JSON
        assert RunSpec.from_dict(data).topology == TOPOLOGY_JSON


class TestBatchEviction:
    def test_topology_specs_are_evicted(self):
        eligible, evicted = partition_specs(specs_for())
        assert eligible == []
        assert [reason for _, reason in evicted] == [EVICT_TOPOLOGY] * 2

    def test_strategies_agree_byte_for_byte(self):
        specs = specs_for()
        batch = sweep(specs, workers=1, strategy="batch")
        fork = sweep(specs, workers=1, strategy="fork")
        assert (
            json.dumps(batch, sort_keys=True)
            == json.dumps(fork, sort_keys=True)
        )


class TestCrashResume:
    def test_resume_under_batch_strategy(self):
        # A crashing topology run inside strategy="batch": the spec is
        # evicted to the fan-out path, crashes, resumes from its
        # checkpoint, and still reproduces the clean run exactly.
        params = dict(
            scenario="emergency", duration=300.0, engine="compiled",
            topology=TOPOLOGY_JSON, checkpoint_every=60.0,
        )
        crashy = RunSpec(run_id="r", crash_at=200.0, **params)
        artifact = sweep([crashy], workers=1, strategy="batch")
        run = artifact["runs"][0]
        assert run["resumed"] is True

        golden = execute_spec(RunSpec(run_id="r", **params)).to_dict()
        assert run["records"] == golden["records"]
        assert run["summary"] == golden["summary"]
