"""Tests for the datacenter spatial-topology subsystem."""
