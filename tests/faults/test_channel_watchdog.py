"""Deterministic unit tests for LossyChannel and DaemonWatchdog.

Everything here is seeded: probabilistic fates come from the injector's
single ``random.Random(seed)``, and the deterministic cases pin fault
probabilities to 0 or 1, so every assertion is exact.
"""

import pytest

from repro.cluster.simulation import ClusterSimulation
from repro.faults.injector import (
    REORDER_HOLD,
    DaemonWatchdog,
    FaultInjector,
    LossyChannel,
    RestartEvent,
)
from repro.faults.model import FaultKind, FaultSpec


def _channel(seed=0):
    injector = FaultInjector(seed=seed)
    delivered = []
    channel = LossyChannel(delivered.append, injector)
    return injector, channel, delivered


def _net(kind, value, duration=None):
    return FaultSpec(kind=kind, value=value, duration=duration)


# ----------------------------------------------------------------------
# LossyChannel
# ----------------------------------------------------------------------


class TestLossyChannel:
    def test_clean_channel_delivers_in_send_order(self):
        injector, channel, delivered = _channel()
        for i in range(5):
            channel(f"m{i}")
        assert channel.flush(0.0) == 5
        assert delivered == [f"m{i}" for i in range(5)]
        assert channel.in_flight == 0
        assert (channel.sent, channel.delivered) == (5, 5)

    def test_delay_fault_lets_later_datagrams_overtake(self):
        injector, channel, delivered = _channel()
        fault = injector.inject(_net(FaultKind.NET_DELAY, 3.0))
        channel("slow")  # due at t=3
        injector._active.remove(fault)
        channel("fast")  # due at t=0
        assert channel.delayed == 1

        assert channel.flush(0.0) == 1
        assert delivered == ["fast"]
        assert channel.in_flight == 1
        assert channel.flush(2.9) == 0  # still in flight
        assert channel.flush(3.0) == 1
        assert delivered == ["fast", "slow"]

    def test_reorder_fault_holds_back_by_reorder_hold(self):
        injector, channel, delivered = _channel()
        fault = injector.inject(_net(FaultKind.NET_REORDER, 1.0))
        injector.advance_to(0.0)
        channel("held")  # due at REORDER_HOLD
        injector._active.remove(fault)
        injector.advance_to(1.0)
        channel("prompt")  # due at t=1

        assert channel.flush(1.0) == 1
        assert delivered == ["prompt"]
        assert channel.flush(REORDER_HOLD) == 1
        assert delivered == ["prompt", "held"]
        assert channel.delayed == 1

    def test_equal_due_times_deliver_in_send_order(self):
        injector, channel, delivered = _channel()
        injector.inject(_net(FaultKind.NET_DELAY, 2.0))
        channel("first")
        channel("second")  # same clock, same delay: ties broken by seq
        assert channel.flush(2.0) == 2
        assert delivered == ["first", "second"]

    def test_duplication_delivers_two_copies(self):
        injector, channel, delivered = _channel()
        injector.inject(_net(FaultKind.NET_DUP, 1.0))
        channel("msg")
        assert channel.duplicated == 1
        assert channel.in_flight == 2
        assert channel.flush(0.0) == 2
        assert delivered == ["msg", "msg"]

    def test_loss_drops_before_queueing(self):
        injector, channel, delivered = _channel()
        injector.inject(_net(FaultKind.NET_LOSS, 1.0))
        channel("msg")
        assert channel.dropped == 1
        assert channel.in_flight == 0
        assert channel.flush(10.0) == 0
        assert delivered == []
        assert any("datagram dropped" in event for _, event in injector.log)

    def test_probabilistic_fates_reproduce_with_same_seed(self):
        outcomes = []
        for _ in range(2):
            injector, channel, delivered = _channel(seed=42)
            injector.inject(_net(FaultKind.NET_LOSS, 0.3))
            injector.inject(_net(FaultKind.NET_REORDER, 0.4))
            for i in range(50):
                channel(i)
            channel.flush(REORDER_HOLD)
            outcomes.append(
                (channel.dropped, channel.delayed, tuple(delivered))
            )
        assert outcomes[0] == outcomes[1]
        dropped, delayed, delivered = outcomes[0]
        assert dropped > 0 and delayed > 0
        # Held-back datagrams were genuinely overtaken.
        assert list(delivered) != sorted(delivered)


# ----------------------------------------------------------------------
# DaemonWatchdog
# ----------------------------------------------------------------------


def _crash(machine="machine1", daemon="tempd"):
    return FaultSpec(kind=FaultKind.DAEMON_CRASH, machine=machine, target=daemon)


class TestDaemonWatchdog:
    def test_restart_waits_for_delay_and_check_period(self):
        injector = FaultInjector()
        restarts = []
        watchdog = DaemonWatchdog(
            injector,
            restart=lambda m, d: restarts.append((m, d)),
            check_period=5.0,
            restart_delay=10.0,
        )
        injector.inject(_crash())  # down since t=0
        assert not injector.daemon_up("machine1", "tempd")

        fired = []
        for now in range(1, 16):
            fired.extend(watchdog.tick(1.0, float(now)))
        # Checks run at t=5, 10, 15; t=5 is before the restart delay.
        assert fired == [RestartEvent(time=10.0, machine="machine1",
                                      daemon="tempd")]
        assert restarts == [("machine1", "tempd")]
        assert injector.daemon_up("machine1", "tempd")

    def test_no_check_between_periods(self):
        injector = FaultInjector()
        watchdog = DaemonWatchdog(
            injector, restart=lambda m, d: None,
            check_period=5.0, restart_delay=0.0,
        )
        injector.inject(_crash())
        assert watchdog.tick(4.0, 4.0) == []  # elapsed 4 < period 5
        events = watchdog.tick(1.0, 5.0)  # elapsed hits the period
        assert [e.time for e in events] == [5.0]

    def test_zero_delay_restarts_at_first_check(self):
        injector = FaultInjector()
        watchdog = DaemonWatchdog(
            injector, restart=lambda m, d: None,
            check_period=2.0, restart_delay=0.0,
        )
        injector.inject(_crash(daemon="monitord"))
        events = watchdog.tick(2.0, 2.0)
        assert [(e.machine, e.daemon) for e in events] == [
            ("machine1", "monitord")
        ]

    def test_multiple_crashed_daemons_restart_together(self):
        injector = FaultInjector()
        watchdog = DaemonWatchdog(
            injector, restart=lambda m, d: None,
            check_period=5.0, restart_delay=0.0,
        )
        injector.inject(_crash("machine1", "tempd"))
        injector.inject(_crash("machine2", "monitord"))
        events = watchdog.tick(5.0, 5.0)
        assert {(e.machine, e.daemon) for e in events} == {
            ("machine1", "tempd"),
            ("machine2", "monitord"),
        }
        assert injector.crashed_daemons() == []


# ----------------------------------------------------------------------
# restart-phase logic (the ClusterSimulation watchdog hook)
# ----------------------------------------------------------------------


class TestRestartPhase:
    def test_restarted_tempd_stays_on_the_kernel_wake_grid(self):
        sim = ClusterSimulation(policy="freon")
        machine = sim.machines[0]
        period = sim.config.monitor_period
        old = sim.tempds[machine]
        old.restricted = True
        wakes_before = [
            e for e in sim.kernel.pending
            if e.kind == "wake" and e.payload["machine"] == machine
        ]

        sim._restart_daemon(machine, "tempd")

        replacement = sim.tempds[machine]
        assert replacement is not old
        # The wake cadence lives in the kernel, not the daemon: the same
        # grid-aligned wake event still stands after the restart.
        wakes_after = [
            e for e in sim.kernel.pending
            if e.kind == "wake" and e.payload["machine"] == machine
        ]
        assert wakes_after == wakes_before
        assert len(wakes_after) == 1
        assert wakes_after[0].time % period == pytest.approx(0.0)
        # admd's restrictions survive the crash (handed over on reconnect).
        assert replacement.restricted is True
        # Controller (derivative) state did not survive.
        assert replacement._controllers is not old._controllers

    def test_restart_ignores_daemons_without_state(self):
        sim = ClusterSimulation(policy="freon")
        machine = sim.machines[0]
        before = sim.tempds[machine]
        sim._restart_daemon(machine, "monitord")
        assert sim.tempds[machine] is before

    def test_watchdog_restart_end_to_end(self):
        injector = FaultInjector()
        sim = ClusterSimulation(policy="freon", injector=injector)
        machine = sim.machines[0]
        injector.schedule(30.0, _crash(machine, "tempd"))
        original = sim.tempds[machine]

        result = sim.run(90.0)

        assert [(r.machine, r.daemon) for r in result.restarts] == [
            (machine, "tempd")
        ]
        restart = result.restarts[0]
        # Watchdog checks every 5 s and waits its 10 s restart delay.
        assert restart.time >= 30.0 + sim.watchdog.restart_delay
        assert sim.tempds[machine] is not original
        assert injector.daemon_up(machine, "tempd")
