"""Tests for the typed fault catalogue."""

import pytest

from repro.errors import FaultError
from repro.faults.model import FaultKind, FaultSpec


class TestFaultSpec:
    def test_sensor_fault_needs_machine_and_component(self):
        spec = FaultSpec(kind=FaultKind.SENSOR_STUCK, machine="m1",
                         target="cpu")
        assert spec.is_sensor and not spec.is_network and not spec.is_daemon
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.SENSOR_STUCK, machine="m1")
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.SENSOR_DROPOUT, target="cpu")

    def test_spike_and_noise_need_values(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.SENSOR_SPIKE, machine="m1", target="cpu")
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.SENSOR_NOISE, machine="m1", target="cpu")
        FaultSpec(kind=FaultKind.SENSOR_SPIKE, machine="m1", target="cpu",
                  value=5.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.SENSOR_NOISE, machine="m1",
                      target="cpu", value=-0.1)

    def test_network_fault_takes_no_machine(self):
        spec = FaultSpec(kind=FaultKind.NET_LOSS, value=0.05)
        assert spec.is_network
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.NET_LOSS, machine="m1", value=0.05)

    def test_network_probabilities_bounded(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.NET_LOSS, value=1.5)
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.NET_DUP, value=-0.1)
        FaultSpec(kind=FaultKind.NET_REORDER, value=1.0)

    def test_delay_must_be_non_negative(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.NET_DELAY, value=-1.0)
        FaultSpec(kind=FaultKind.NET_DELAY, value=0.0)

    def test_daemon_fault_validates_daemon_name(self):
        FaultSpec(kind=FaultKind.DAEMON_CRASH, machine="m1", target="tempd")
        FaultSpec(kind=FaultKind.DAEMON_CRASH, machine="m1",
                  target="monitord")
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.DAEMON_CRASH, machine="m1",
                      target="systemd")

    def test_stall_only_applies_to_monitord(self):
        FaultSpec(kind=FaultKind.MONITORD_STALL, machine="m1",
                  target="monitord")
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.MONITORD_STALL, machine="m1",
                      target="tempd")

    def test_duration_must_be_positive(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.NET_LOSS, value=0.1, duration=0.0)
        FaultSpec(kind=FaultKind.NET_LOSS, value=0.1, duration=60.0)

    def test_describe_mentions_location_and_value(self):
        spec = FaultSpec(kind=FaultKind.SENSOR_STUCK, machine="m2",
                         target="disk", value=45.0, duration=600.0)
        text = spec.describe()
        assert "m2/disk" in text and "stuck" in text
        assert "45" in text and "600" in text
        net = FaultSpec(kind=FaultKind.NET_LOSS, value=0.05)
        assert "network" in net.describe()
