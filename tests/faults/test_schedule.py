"""Tests for fault schedules and the ``fault`` script statement."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FaultError, FiddleError
from repro.faults.model import FaultKind, FaultSpec
from repro.faults.schedule import (
    FaultSchedule,
    ScheduledFault,
    format_fault_command,
    is_fault_command,
    parse_fault_command,
)
from repro.fiddle.script import parse_script, to_events, write_script


class TestParseFaultCommand:
    def test_sensor_stuck_with_value_and_duration(self):
        spec = parse_fault_command("fault machine2 sensor stuck disk 45 for 600")
        assert spec.kind is FaultKind.SENSOR_STUCK
        assert spec.machine == "machine2" and spec.target == "disk"
        assert spec.value == 45.0 and spec.duration == 600.0

    def test_sensor_stuck_without_value_freezes_current(self):
        spec = parse_fault_command("fault m1 sensor stuck cpu")
        assert spec.value is None and spec.duration is None

    def test_sensor_dropout_rejects_value(self):
        parse_fault_command("fault m1 sensor dropout cpu for 60")
        with pytest.raises(FaultError):
            parse_fault_command("fault m1 sensor dropout cpu 3")

    def test_sensor_spike_and_noise(self):
        spike = parse_fault_command("fault m1 sensor spike cpu 5.5")
        assert spike.kind is FaultKind.SENSOR_SPIKE and spike.value == 5.5
        noise = parse_fault_command("fault m1 sensor noise disk 0.4 for 30")
        assert noise.kind is FaultKind.SENSOR_NOISE and noise.duration == 30.0

    def test_network_faults(self):
        loss = parse_fault_command("fault net loss 0.05")
        assert loss.kind is FaultKind.NET_LOSS and loss.machine is None
        dup = parse_fault_command("fault net dup 0.1 for 120")
        assert dup.kind is FaultKind.NET_DUP and dup.duration == 120.0
        reorder = parse_fault_command("fault net reorder 0.2")
        assert reorder.kind is FaultKind.NET_REORDER
        delay = parse_fault_command("fault net delay 2.5")
        assert delay.kind is FaultKind.NET_DELAY and delay.value == 2.5

    def test_daemon_crash_and_stall(self):
        crash = parse_fault_command("fault m3 daemon crash tempd")
        assert crash.kind is FaultKind.DAEMON_CRASH and crash.target == "tempd"
        stall = parse_fault_command("fault m3 monitord stall for 30")
        assert stall.kind is FaultKind.MONITORD_STALL and stall.duration == 30.0

    def test_leading_fault_word_optional(self):
        assert parse_fault_command("net loss 0.1").kind is FaultKind.NET_LOSS

    def test_quoted_machine_names(self):
        spec = parse_fault_command('fault "rack 1 node" sensor stuck cpu')
        assert spec.machine == "rack 1 node"

    @pytest.mark.parametrize(
        "line",
        [
            "fault",
            "fault m1",
            "fault m1 sensor",
            "fault m1 sensor melt cpu",
            "fault net loss",
            "fault net loss 0.05 0.06",
            "fault net teleport 0.5",
            "fault m1 daemon crash",
            "fault m1 daemon restart tempd",
            "fault m1 monitord crash",
            "fault m1 sensor stuck cpu 1 2",
            "fault m1 sensor stuck cpu for",
            "fault m1 sensor stuck cpu for 10 20",
            "fault m1 sensor spike cpu abc",
        ],
    )
    def test_malformed_commands_rejected(self, line):
        with pytest.raises(FaultError):
            parse_fault_command(line)


class TestFormatRoundTrip:
    CASES = [
        "fault machine2 sensor stuck disk 45 for 600",
        "fault m1 sensor stuck cpu",
        "fault m1 sensor dropout cpu for 60",
        "fault m1 sensor spike cpu 5.5",
        "fault m1 sensor noise disk 0.4 for 30",
        "fault net loss 0.05",
        "fault net dup 0.1 for 120",
        "fault net delay 2.5",
        "fault m3 daemon crash tempd",
        "fault m3 monitord stall for 30",
    ]

    @pytest.mark.parametrize("line", CASES)
    def test_parse_format_parse_is_identity(self, line):
        spec = parse_fault_command(line)
        assert parse_fault_command(format_fault_command(spec)) == spec

    @given(
        value=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        duration=st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=1e6,
                                 allow_nan=False)
        ),
    )
    def test_round_trip_property(self, value, duration):
        spec = FaultSpec(kind=FaultKind.NET_LOSS, value=value,
                         duration=duration)
        assert parse_fault_command(format_fault_command(spec)) == spec

    def test_is_fault_command(self):
        assert is_fault_command("fault net loss 0.05")
        assert is_fault_command("  fault m1 sensor stuck cpu")
        assert not is_fault_command("fiddle m1 temperature inlet 30")
        assert not is_fault_command("faulty line")


class TestScriptIntegration:
    SCRIPT = (
        "#!/bin/bash\n"
        "fault net loss 0.05\n"
        "sleep 480\n"
        "fiddle machine1 temperature inlet 38.6\n"
        "fault machine2 sensor stuck disk 45 for 600\n"
        "sleep 100\n"
        "fault machine1 daemon crash tempd\n"
    )

    def test_fault_statements_parse_with_times(self):
        commands = parse_script(self.SCRIPT)
        assert [c.time for c in commands] == [0.0, 480.0, 480.0, 580.0]
        assert is_fault_command(commands[0].command)
        assert not is_fault_command(commands[1].command)

    def test_bad_fault_statement_reports_line(self):
        with pytest.raises(FiddleError, match="line 2"):
            parse_script("sleep 10\nfault net teleport 1\n")

    def test_writer_round_trips_mixed_script(self):
        commands = parse_script(self.SCRIPT)
        assert parse_script(write_script(commands)) == commands

    def test_offline_events_reject_fault_statements(self):
        with pytest.raises(FiddleError, match="fault statements"):
            to_events(parse_script(self.SCRIPT))

    def test_fault_free_script_still_converts_to_events(self):
        events = to_events(parse_script("sleep 5\nfiddle m1 fan 30\n"))
        assert len(events) == 1 and events[0].time == 5.0


class TestFaultSchedule:
    def test_from_script_keeps_only_faults(self):
        schedule = FaultSchedule.from_script(TestScriptIntegration.SCRIPT)
        assert len(schedule) == 3
        starts = [f.start for f in schedule]
        assert starts == [0.0, 480.0, 580.0]

    def test_to_script_round_trips(self):
        schedule = FaultSchedule.from_script(TestScriptIntegration.SCRIPT)
        again = FaultSchedule.from_script(schedule.to_script())
        assert list(again) == list(schedule)

    def test_at_orders_by_start(self):
        spec = FaultSpec(kind=FaultKind.NET_LOSS, value=0.1)
        schedule = FaultSchedule().at(50.0, spec).at(10.0, spec)
        assert [f.start for f in schedule] == [10.0, 50.0]

    def test_negative_start_rejected(self):
        spec = FaultSpec(kind=FaultKind.NET_LOSS, value=0.1)
        with pytest.raises(FaultError):
            ScheduledFault(start=-1.0, spec=spec)
