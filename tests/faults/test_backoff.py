"""Tests for the shared UDP retry/backoff policy."""

import pytest

from repro.faults.backoff import BackoffPolicy, DEFAULT_BACKOFF


class TestBackoffPolicy:
    def test_default_schedule_grows_exponentially(self):
        policy = BackoffPolicy(attempts=4, base_timeout=0.5, multiplier=2.0,
                               max_timeout=10.0)
        assert list(policy.timeouts()) == [0.5, 1.0, 2.0, 4.0]

    def test_max_timeout_caps_the_schedule(self):
        policy = BackoffPolicy(attempts=5, base_timeout=1.0, multiplier=3.0,
                               max_timeout=4.0)
        assert list(policy.timeouts()) == [1.0, 3.0, 4.0, 4.0, 4.0]

    def test_constant_schedule_with_unit_multiplier(self):
        policy = BackoffPolicy(attempts=3, base_timeout=0.2, multiplier=1.0)
        assert list(policy.timeouts()) == [0.2, 0.2, 0.2]

    def test_total_budget(self):
        policy = BackoffPolicy(attempts=3, base_timeout=0.5, multiplier=2.0,
                               max_timeout=4.0)
        assert policy.total_budget() == pytest.approx(0.5 + 1.0 + 2.0)

    def test_timeout_indexing(self):
        policy = BackoffPolicy()
        assert policy.timeout(0) == policy.base_timeout
        with pytest.raises(ValueError):
            policy.timeout(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_timeout": 0.0},
            {"base_timeout": -1.0},
            {"max_timeout": -1.0},
            {"multiplier": 0.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_default_policy_is_bounded(self):
        assert DEFAULT_BACKOFF.attempts == 3
        assert DEFAULT_BACKOFF.total_budget() < 10.0
