"""Tests for the runtime fault injector, lossy channel, and watchdog."""

import pytest

from repro.errors import SensorError
from repro.faults.injector import (
    DaemonWatchdog,
    FaultInjector,
    LossyChannel,
    REORDER_HOLD,
)
from repro.faults.model import FaultKind, FaultSpec
from repro.faults.schedule import FaultSchedule


def spec(kind, **kwargs):
    return FaultSpec(kind=kind, **kwargs)


class TestClockAndLifecycle:
    def test_scheduled_fault_fires_at_its_time(self):
        schedule = FaultSchedule().at(
            10.0, spec(FaultKind.NET_LOSS, value=0.5)
        )
        injector = FaultInjector(schedule)
        injector.advance_to(9.0)
        assert injector.active == []
        injector.advance_to(10.0)
        assert len(injector.active) == 1

    def test_duration_expires_fault(self):
        schedule = FaultSchedule().at(
            5.0, spec(FaultKind.NET_LOSS, value=0.5, duration=10.0)
        )
        injector = FaultInjector(schedule)
        injector.advance_to(6.0)
        assert len(injector.active) == 1
        injector.advance_to(15.0)
        assert injector.active == []
        assert any("expire" in event for _, event in injector.log)

    def test_inject_and_clear(self):
        injector = FaultInjector()
        injector.inject(spec(FaultKind.NET_LOSS, value=1.0))
        injector.inject(spec(FaultKind.NET_DUP, value=1.0))
        assert injector.clear(FaultKind.NET_LOSS) == 1
        assert len(injector.active) == 1
        assert injector.clear() == 1
        assert injector.active == []


class TestSensorHook:
    def test_stuck_freezes_first_value_seen(self):
        injector = FaultInjector()
        injector.inject(
            spec(FaultKind.SENSOR_STUCK, machine="m1", target="cpu")
        )
        assert injector.filter_sensor("m1", "cpu", 50.0) == 50.0
        assert injector.filter_sensor("m1", "cpu", 80.0) == 50.0

    def test_stuck_with_explicit_value(self):
        injector = FaultInjector()
        injector.inject(
            spec(FaultKind.SENSOR_STUCK, machine="m1", target="disk",
                 value=45.0)
        )
        assert injector.filter_sensor("m1", "disk", 60.0) == 45.0

    def test_stuck_matches_case_insensitively(self):
        injector = FaultInjector()
        injector.inject(
            spec(FaultKind.SENSOR_STUCK, machine="m1", target="CPU",
                 value=10.0)
        )
        assert injector.filter_sensor("m1", "cpu", 60.0) == 10.0

    def test_other_sensors_unaffected(self):
        injector = FaultInjector()
        injector.inject(
            spec(FaultKind.SENSOR_STUCK, machine="m1", target="cpu",
                 value=45.0)
        )
        assert injector.filter_sensor("m2", "cpu", 60.0) == 60.0
        assert injector.filter_sensor("m1", "disk", 60.0) == 60.0

    def test_dropout_raises_sensor_error(self):
        injector = FaultInjector()
        injector.inject(
            spec(FaultKind.SENSOR_DROPOUT, machine="m1", target="cpu")
        )
        with pytest.raises(SensorError, match="dropout"):
            injector.filter_sensor("m1", "cpu", 60.0)
        assert injector.sensor_dropped_reads == 1

    def test_spike_offsets_reading(self):
        injector = FaultInjector()
        injector.inject(
            spec(FaultKind.SENSOR_SPIKE, machine="m1", target="cpu",
                 value=7.0)
        )
        assert injector.filter_sensor("m1", "cpu", 60.0) == 67.0

    def test_noise_is_seeded_and_reproducible(self):
        readings = []
        for _ in range(2):
            injector = FaultInjector(seed=42)
            injector.inject(
                spec(FaultKind.SENSOR_NOISE, machine="m1", target="cpu",
                     value=1.0)
            )
            readings.append(
                [injector.filter_sensor("m1", "cpu", 60.0) for _ in range(5)]
            )
        assert readings[0] == readings[1]
        assert len(set(readings[0])) > 1  # it actually perturbs


class TestDaemonHooks:
    def test_crash_and_restart(self):
        injector = FaultInjector()
        injector.advance_to(100.0)
        injector.inject(
            spec(FaultKind.DAEMON_CRASH, machine="m1", target="tempd")
        )
        assert not injector.daemon_up("m1", "tempd")
        assert injector.daemon_up("m2", "tempd")
        assert injector.crashed_daemons() == [("m1", "tempd", 100.0)]
        assert injector.restart_daemon("m1", "tempd")
        assert injector.daemon_up("m1", "tempd")
        assert not injector.restart_daemon("m1", "tempd")

    def test_monitord_stall_and_crash_both_suppress(self):
        injector = FaultInjector()
        assert injector.monitord_active("m1")
        injector.inject(
            spec(FaultKind.MONITORD_STALL, machine="m1", target="monitord",
                 duration=10.0)
        )
        assert not injector.monitord_active("m1")
        assert injector.monitord_active("m2")
        injector.advance_to(20.0)
        assert injector.monitord_active("m1")
        injector.inject(
            spec(FaultKind.DAEMON_CRASH, machine="m1", target="monitord")
        )
        assert not injector.monitord_active("m1")


class TestLossyChannel:
    def test_clean_channel_delivers_in_order(self):
        injector = FaultInjector()
        got = []
        channel = LossyChannel(got.append, injector)
        channel("a")
        channel("b")
        assert channel.flush(0.0) == 2
        assert got == ["a", "b"]
        assert channel.in_flight == 0

    def test_total_loss_drops_everything(self):
        injector = FaultInjector()
        injector.inject(spec(FaultKind.NET_LOSS, value=1.0))
        got = []
        channel = LossyChannel(got.append, injector)
        for i in range(10):
            channel(i)
        channel.flush(100.0)
        assert got == [] and channel.dropped == 10

    def test_partial_loss_is_seeded(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(seed=7)
            injector.inject(spec(FaultKind.NET_LOSS, value=0.5))
            got = []
            channel = LossyChannel(got.append, injector)
            for i in range(20):
                channel(i)
            channel.flush(0.0)
            outcomes.append(tuple(got))
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 20

    def test_duplication_delivers_twice(self):
        injector = FaultInjector()
        injector.inject(spec(FaultKind.NET_DUP, value=1.0))
        got = []
        channel = LossyChannel(got.append, injector)
        channel("x")
        channel.flush(0.0)
        assert got == ["x", "x"] and channel.duplicated == 1

    def test_delay_holds_messages_until_due(self):
        injector = FaultInjector()
        injector.inject(spec(FaultKind.NET_DELAY, value=5.0))
        got = []
        channel = LossyChannel(got.append, injector)
        injector.advance_to(10.0)
        channel("late")
        assert channel.flush(12.0) == 0
        assert channel.in_flight == 1
        assert channel.flush(15.0) == 1
        assert got == ["late"]

    def test_reorder_lets_later_messages_overtake(self):
        injector = FaultInjector()
        injector.inject(spec(FaultKind.NET_REORDER, value=1.0))
        got = []
        channel = LossyChannel(got.append, injector)
        injector.advance_to(0.0)
        channel("first")  # held back by REORDER_HOLD
        injector.clear(FaultKind.NET_REORDER)
        injector.advance_to(1.0)
        channel("second")  # due immediately at t=1.0
        channel.flush(REORDER_HOLD)
        assert got == ["second", "first"]


class TestWatchdog:
    def test_restarts_after_delay(self):
        injector = FaultInjector()
        restarted = []
        watchdog = DaemonWatchdog(
            injector,
            restart=lambda m, d: restarted.append((m, d)),
            check_period=5.0,
            restart_delay=10.0,
        )
        injector.advance_to(100.0)
        injector.inject(
            spec(FaultKind.DAEMON_CRASH, machine="m1", target="tempd")
        )
        now = 100.0
        fired = []
        while now < 120.0:
            now += 1.0
            injector.advance_to(now)
            fired.extend(watchdog.tick(1.0, now))
        assert restarted == [("m1", "tempd")]
        assert len(fired) == 1
        assert fired[0].time >= 110.0
        assert injector.daemon_up("m1", "tempd")

    def test_no_restart_before_delay(self):
        injector = FaultInjector()
        watchdog = DaemonWatchdog(
            injector, restart=lambda m, d: None, check_period=1.0,
            restart_delay=60.0,
        )
        injector.advance_to(0.0)
        injector.inject(
            spec(FaultKind.DAEMON_CRASH, machine="m1", target="tempd")
        )
        for now in range(1, 30):
            watchdog.tick(1.0, float(now))
        assert watchdog.events == []
        assert not injector.daemon_up("m1", "tempd")
