"""Resilience behaviour under injected faults.

Covers tempd's last-known-good / conservative-throttle policy when its
sensor reads fail, monitord's stall handling, and the SensorService
fault hook (observed vs. ground-truth temperatures).
"""

import pytest

from repro.config import table1
from repro.core.solver import Solver
from repro.daemons.monitord import Monitord
from repro.daemons.tempd import MSG_ADJUST, Tempd
from repro.errors import SensorError
from repro.faults.injector import FaultInjector
from repro.faults.model import FaultKind, FaultSpec
from repro.freon.policy import ComponentThresholds, FreonConfig
from repro.machine.server import SimulatedServer
from repro.machine.workloads import ConstantWorkload
from repro.sensors.server import SensorService


def make_config(**overrides):
    defaults = dict(
        thresholds={
            "cpu": ComponentThresholds(high=67.0, low=64.0, red=69.0),
            "disk": ComponentThresholds(high=65.0, low=62.0, red=67.0),
        },
        monitor_period=60.0,
        sensor_staleness_limit=180.0,
    )
    defaults.update(overrides)
    return FreonConfig(**defaults)


class FlakySensor:
    """Reader that can be told to fail on demand."""

    def __init__(self, cpu=50.0, disk=40.0):
        self.cpu = cpu
        self.disk = disk
        self.failing = False

    def __call__(self):
        if self.failing:
            raise SensorError("injected dropout")
        return {"cpu": self.cpu, "disk": self.disk}


@pytest.fixture
def harness():
    sensor = FlakySensor()
    messages = []
    daemon = Tempd(
        machine="m1",
        temperature_reader=sensor,
        send=messages.append,
        config=make_config(),
    )
    return sensor, messages, daemon


class TestTempdLastKnownGood:
    def test_quiet_failure_within_limit_sends_nothing(self, harness):
        sensor, messages, daemon = harness
        daemon.wake(60.0)  # good read, below thresholds
        sensor.failing = True
        daemon.wake(120.0)
        assert messages == []
        assert daemon.read_failures == 1
        assert daemon.stale_wakes == 1
        assert not daemon.restricted

    def test_restricted_failure_holds_last_pd_output(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        assert messages[-1].type == MSG_ADJUST
        held = messages[-1].output
        sensor.failing = True
        daemon.wake(120.0)
        assert messages[-1].type == MSG_ADJUST
        assert messages[-1].output == held
        assert messages[-1].temperatures == {"cpu": 68.5, "disk": 40.0}
        assert daemon.restricted
        assert daemon.stale_wakes == 1

    def test_past_staleness_limit_fails_conservative(self, harness):
        sensor, messages, daemon = harness
        daemon.wake(60.0)  # last good at t=60
        sensor.failing = True
        daemon.wake(120.0)
        daemon.wake(180.0)
        daemon.wake(240.0)  # still within 180s of t=60
        assert messages == []
        daemon.wake(300.0)  # 240s stale: past the limit
        assert len(messages) == 1
        msg = messages[0]
        assert msg.type == MSG_ADJUST
        assert msg.output == daemon.config.conservative_output
        assert daemon.restricted
        assert daemon.conservative_wakes == 1
        assert daemon.stale_wakes == 3

    def test_no_good_reading_ever_is_immediately_conservative(self, harness):
        sensor, messages, daemon = harness
        sensor.failing = True
        daemon.wake(60.0)
        assert len(messages) == 1
        assert messages[0].type == MSG_ADJUST
        assert messages[0].output == daemon.config.conservative_output
        assert messages[0].temperatures == {}
        assert daemon.conservative_wakes == 1

    def test_recovery_resumes_normal_policy(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        sensor.failing = True
        daemon.wake(120.0)
        sensor.failing = False
        sensor.cpu = 50.0
        daemon.wake(180.0)
        daemon.wake(240.0)
        # Cooled below every low threshold: the restriction lifts.
        assert messages[-1].type == "release"
        assert not daemon.restricted

    def test_kernel_wake_events_keep_restarted_daemon_on_the_grid(self):
        # The event kernel owns the wake cadence: one grid-aligned wake
        # event per machine survives a daemon restart, so a replacement
        # daemon (built mid-period, t=1070 here) wakes on the 60 s grid
        # without any phase bookkeeping of its own.
        from repro.kernel import EventKernel

        sensor = FlakySensor()
        wakes = []
        kernel = EventKernel()
        kernel.clock.advance(1070.0)

        daemon = Tempd(
            machine="m1",
            temperature_reader=sensor,
            send=lambda m: None,
            config=make_config(),
        )

        def on_wake(event):
            wakes.append(event.time)
            daemon.wake(event.time)
            kernel.schedule(event.time + 60.0, 20, "wake")

        kernel.register("wake", on_wake)
        kernel.schedule(1080.0, 20, "wake")  # next grid point after 1070
        while kernel.peek() is not None and kernel.peek().time < 1300.0:
            kernel.run_next()
        assert wakes == [1080.0, 1140.0, 1200.0, 1260.0]


class TestMonitordStall:
    @pytest.fixture
    def stack(self, layout):
        solver = Solver([layout], record=False)
        service = SensorService(solver, aliases=table1.sensor_map())
        server = SimulatedServer(
            layout,
            workload=ConstantWorkload(
                {table1.CPU: 0.6, table1.DISK_PLATTERS: 0.3}
            ),
            seed=9,
        )
        return server, service

    def test_stall_suppresses_updates_then_recovers(self, stack):
        server, service = stack
        injector = FaultInjector()
        daemon = Monitord("machine1", server, service, injector=injector)
        server.step(1.0)
        assert daemon.tick(1.0) is not None
        injector.inject(
            FaultSpec(
                kind=FaultKind.MONITORD_STALL,
                machine="machine1",
                target="monitord",
                duration=3.0,
            )
        )
        injector.advance_to(1.0)
        assert daemon.tick(1.0) is None
        assert daemon.updates_stalled == 1
        injector.advance_to(5.0)  # fault expired
        # Elapsed time accumulated during the stall: sends immediately.
        assert daemon.tick(1.0) is not None
        assert daemon.updates_sent == 2

    def test_crash_also_suppresses_monitord(self, stack):
        server, service = stack
        injector = FaultInjector()
        daemon = Monitord("machine1", server, service, injector=injector)
        injector.inject(
            FaultSpec(
                kind=FaultKind.DAEMON_CRASH,
                machine="machine1",
                target="monitord",
            )
        )
        server.step(1.0)
        assert daemon.tick(1.0) is None
        assert daemon.updates_stalled == 1


class TestSensorServiceHook:
    @pytest.fixture
    def service(self, layout):
        solver = Solver([layout], record=False)
        injector = FaultInjector()
        return (
            SensorService(
                solver, aliases=table1.sensor_map(), injector=injector
            ),
            injector,
        )

    def test_stuck_fault_lies_while_truth_is_visible(self, service):
        service, injector = service
        injector.inject(
            FaultSpec(
                kind=FaultKind.SENSOR_STUCK,
                machine="machine1",
                target="disk",
                value=45.0,
            )
        )
        assert service.read_temperature("machine1", "disk") == 45.0
        assert service.true_temperature("machine1", "disk") == pytest.approx(
            table1.INLET_TEMPERATURE
        )

    def test_dropout_raises_through_the_service(self, service):
        service, injector = service
        injector.inject(
            FaultSpec(
                kind=FaultKind.SENSOR_DROPOUT,
                machine="machine1",
                target="cpu",
            )
        )
        with pytest.raises(SensorError):
            service.read_temperature("machine1", "cpu")
        assert service.read_temperature("machine1", "disk") > 0.0
