"""Tests for the chip-multiprocessor (two-level CPU) layouts."""

import pytest

from repro.config import table1
from repro.config.cmp import (
    cmp_machine,
    core_name,
    set_core_utilizations,
)
from repro.core.solver import Solver


class TestLayout:
    def test_structure(self):
        layout = cmp_machine(cores=4)
        for i in range(4):
            assert core_name(i) in layout.components
        assert "CPU Package" in layout.components
        assert table1.CPU not in layout.components

    def test_power_envelope_matches_table1(self):
        layout = cmp_machine(cores=4)
        idle = sum(
            layout.components[c].power_model.idle_power
            for c in [core_name(i) for i in range(4)] + ["CPU Package"]
        )
        peak = sum(
            layout.components[c].power_model.max_power
            for c in [core_name(i) for i in range(4)] + ["CPU Package"]
        )
        assert idle == pytest.approx(7.0)
        assert peak == pytest.approx(31.0)

    def test_mass_conserved(self):
        layout = cmp_machine(cores=4)
        total = sum(
            layout.components[c].mass
            for c in [core_name(i) for i in range(4)] + ["CPU Package"]
        )
        assert total == pytest.approx(table1.MASS[table1.CPU])

    def test_core_count_validation(self):
        with pytest.raises(ValueError):
            cmp_machine(cores=0)
        with pytest.raises(ValueError):
            cmp_machine(cores=100)  # exceeds the CPU mass budget

    def test_other_components_preserved(self):
        layout = cmp_machine(cores=2)
        assert table1.DISK_PLATTERS in layout.components
        assert table1.POWER_SUPPLY in layout.components


class TestTwoLevelBehaviour:
    def test_busy_core_hotter_than_siblings(self):
        layout = cmp_machine(cores=4)
        solver = Solver([layout], record=False)
        set_core_utilizations(solver, "machine1", [1.0, 0.0, 0.0, 0.0])
        solver.run(4000)
        busy = solver.temperature("machine1", core_name(0))
        idle = solver.temperature("machine1", core_name(1))
        assert busy > idle + 1.0

    def test_idle_siblings_identical(self):
        layout = cmp_machine(cores=4)
        solver = Solver([layout], record=False)
        set_core_utilizations(solver, "machine1", [1.0, 0.0, 0.0, 0.0])
        solver.run(2000)
        temps = [
            solver.temperature("machine1", core_name(i)) for i in (1, 2, 3)
        ]
        assert max(temps) - min(temps) < 1e-9

    def test_cores_hotter_than_package(self):
        layout = cmp_machine(cores=4)
        solver = Solver([layout], record=False)
        set_core_utilizations(solver, "machine1", [1.0] * 4)
        solver.run(4000)
        package = solver.temperature("machine1", "CPU Package")
        for i in range(4):
            assert solver.temperature("machine1", core_name(i)) > package

    def test_aggregate_matches_monolithic_cpu(self):
        # All cores busy: the package should land within ~1 C of the
        # Table 1 monolithic CPU at full utilization.
        from repro.config.layouts import validation_machine

        cmp_layout = cmp_machine(cores=4)
        solver = Solver([cmp_layout], record=False)
        set_core_utilizations(solver, "machine1", [1.0] * 4)
        solver.run(8000)
        package = solver.temperature("machine1", "CPU Package")

        mono = Solver([validation_machine()], record=False)
        mono.set_utilization("machine1", table1.CPU, 1.0)
        mono.run(8000)
        monolithic = mono.temperature("machine1", table1.CPU)
        assert package == pytest.approx(monolithic, abs=1.5)

    def test_cores_respond_faster_than_package(self):
        # Two-level dynamics: a core's time constant is seconds (grams of
        # silicon), the package's is minutes.  Within 10 s of a load step
        # the busy core has already established most of its steady offset
        # above the package, while the package has barely moved.
        layout = cmp_machine(cores=4)
        solver = Solver([layout], record=False)
        set_core_utilizations(solver, "machine1", [1.0, 0.0, 0.0, 0.0])
        solver.run(10)
        early_offset = solver.temperature(
            "machine1", core_name(0)
        ) - solver.temperature("machine1", "CPU Package")
        package_early = solver.temperature("machine1", "CPU Package")
        solver.run(8000)
        final_offset = solver.temperature(
            "machine1", core_name(0)
        ) - solver.temperature("machine1", "CPU Package")
        package_final = solver.temperature("machine1", "CPU Package")
        assert early_offset > 0.7 * final_offset
        # ... while the package itself was still far from steady.
        start = table1.INLET_TEMPERATURE
        assert (package_early - start) / (package_final - start) < 0.4

    def test_set_core_utilizations_sets_package_average(self):
        layout = cmp_machine(cores=4)
        solver = Solver([layout], record=False)
        set_core_utilizations(solver, "machine1", [1.0, 0.5, 0.0, 0.5])
        state = solver.machine("machine1")
        assert state.utilizations["CPU Package"] == pytest.approx(0.5)
