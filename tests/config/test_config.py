"""Tests for the Table 1 constants and layout builders."""

import pytest

from repro import units
from repro.config import table1
from repro.config.layouts import (
    recirculating_cluster,
    validation_cluster,
    validation_machine,
)
from repro.core.power import ConstantPowerModel, LinearPowerModel


class TestTable1Constants:
    """Spot-check the numbers against the paper's Table 1."""

    def test_masses(self):
        assert table1.MASS[table1.DISK_PLATTERS] == 0.336
        assert table1.MASS[table1.DISK_SHELL] == 0.505
        assert table1.MASS[table1.CPU] == 0.151
        assert table1.MASS[table1.POWER_SUPPLY] == 1.643
        assert table1.MASS[table1.MOTHERBOARD] == 0.718

    def test_specific_heats(self):
        # Aluminium everywhere except the FR4 motherboard.
        for component in (table1.DISK_PLATTERS, table1.DISK_SHELL,
                          table1.CPU, table1.POWER_SUPPLY):
            assert table1.SPECIFIC_HEAT[component] == 896.0
        assert table1.SPECIFIC_HEAT[table1.MOTHERBOARD] == 1245.0

    def test_power_ranges(self):
        assert table1.POWER_RANGE[table1.DISK_PLATTERS] == (9.0, 14.0)
        assert table1.POWER_RANGE[table1.CPU] == (7.0, 31.0)
        assert table1.POWER_RANGE[table1.POWER_SUPPLY] == (40.0, 40.0)
        assert table1.POWER_RANGE[table1.MOTHERBOARD] == (4.0, 4.0)

    def test_boundary_conditions(self):
        assert table1.INLET_TEMPERATURE == 21.6
        assert table1.FAN_CFM == 38.6

    def test_heat_edge_constants(self):
        k = {(a, b): v for a, b, v in table1.HEAT_EDGES}
        assert k[(table1.DISK_PLATTERS, table1.DISK_SHELL)] == 2.0
        assert k[(table1.DISK_SHELL, table1.DISK_AIR)] == 1.9
        assert k[(table1.CPU, table1.CPU_AIR)] == 0.75
        assert k[(table1.POWER_SUPPLY, table1.PS_AIR)] == 4.0
        assert k[(table1.MOTHERBOARD, table1.VOID_AIR)] == 10.0
        assert k[(table1.MOTHERBOARD, table1.CPU)] == 0.1

    def test_air_fractions_sum_to_one(self):
        outgoing = {}
        for src, _dst, fraction in table1.AIR_EDGES:
            outgoing[src] = outgoing.get(src, 0.0) + fraction
        for region, total in outgoing.items():
            assert total == pytest.approx(1.0), region

    def test_freon_thresholds(self):
        assert table1.T_HIGH_CPU == 67.0
        assert table1.T_LOW_CPU == 64.0
        assert table1.T_HIGH_DISK == 65.0
        assert table1.T_LOW_DISK == 62.0

    def test_emergency_settings(self):
        assert table1.EMERGENCY_TIME == 480.0
        assert table1.EMERGENCY_INLET_M1 == 38.6
        assert table1.EMERGENCY_INLET_M3 == 35.6

    def test_sensor_map_targets_exist(self):
        layout = validation_machine()
        for node in table1.sensor_map().values():
            assert node in layout.components or node in layout.air_regions


class TestValidationMachine:
    def test_power_model_kinds(self):
        layout = validation_machine()
        assert isinstance(
            layout.components[table1.CPU].power_model, LinearPowerModel
        )
        assert isinstance(
            layout.components[table1.POWER_SUPPLY].power_model,
            ConstantPowerModel,
        )

    def test_k_overrides(self):
        layout = validation_machine(
            k_overrides={(table1.CPU, table1.CPU_AIR): 0.9}
        )
        k = {e.key: e.k for e in layout.heat_edges}
        assert k[(table1.CPU, table1.CPU_AIR)] == 0.9
        # Others untouched.
        assert k[(table1.DISK_PLATTERS, table1.DISK_SHELL)] == 2.0

    def test_custom_name_and_inlet(self):
        layout = validation_machine("box7", inlet_temperature=25.0)
        assert layout.name == "box7"
        assert layout.inlet_temperature == 25.0


class TestValidationCluster:
    def test_four_machines_fed_evenly(self):
        cluster = validation_cluster()
        for machine in table1.CLUSTER_MACHINES:
            edges = cluster.incoming(machine)
            assert len(edges) == 1
            assert edges[0].fraction == pytest.approx(0.25)

    def test_custom_machine_count(self):
        cluster = validation_cluster(machine_names=("a", "b"))
        assert set(cluster.machines) == {"a", "b"}
        assert cluster.incoming("a")[0].fraction == pytest.approx(0.5)

    def test_k_overrides_apply_to_all_machines(self):
        cluster = validation_cluster(
            k_overrides={(table1.CPU, table1.CPU_AIR): 0.8}
        )
        for layout in cluster.machines.values():
            k = {e.key: e.k for e in layout.heat_edges}
            assert k[(table1.CPU, table1.CPU_AIR)] == 0.8


class TestRecirculatingCluster:
    def test_fraction_split(self):
        cluster = recirculating_cluster(
            machine_names=("a", "b"), recirculation=0.2
        )
        edges = {(e.src, e.dst): e.fraction for e in cluster.edges}
        assert edges[("a", "b")] == pytest.approx(0.2)
        assert edges[("a", "Cluster Exhaust")] == pytest.approx(0.8)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            recirculating_cluster(recirculation=1.0)
