"""Unit tests for the discrete-event kernel (repro.kernel)."""

import json

import pytest

from repro.errors import KernelError
from repro.kernel import EventKernel, SimClock


def make_kernel(trace=None):
    kernel = EventKernel()
    log = trace if trace is not None else []

    def handler(event):
        log.append((event.time, event.priority, event.kind, event.payload))

    for kind in ("a", "b", "c"):
        kernel.register(kind, handler)
    return kernel, log


class TestClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_rewind_allowed_for_restore(self):
        clock = SimClock(10.0)
        clock.advance(3.0)
        assert clock.now == 3.0


class TestOrdering:
    def test_time_orders_dispatch(self):
        kernel, log = make_kernel()
        kernel.schedule(2.0, 0, "a")
        kernel.schedule(1.0, 0, "b")
        kernel.schedule(3.0, 0, "c")
        for _ in range(3):
            kernel.run_next()
        assert [entry[3] is None for entry in log] == [True, True, True]
        assert [entry[0] for entry in log] == [1.0, 2.0, 3.0]
        assert kernel.clock.now == 3.0

    def test_priority_breaks_time_ties(self):
        kernel, log = make_kernel()
        kernel.schedule(1.0, 20, "a")
        kernel.schedule(1.0, 10, "b")
        kernel.schedule(1.0, 30, "c")
        for _ in range(3):
            kernel.run_next()
        assert [entry[2] for entry in log] == ["b", "a", "c"]

    def test_seq_breaks_remaining_ties_in_schedule_order(self):
        kernel, log = make_kernel()
        for i in range(5):
            kernel.schedule(1.0, 10, "a", {"i": i})
        for _ in range(5):
            kernel.run_next()
        assert [entry[3]["i"] for entry in log] == [0, 1, 2, 3, 4]

    def test_dispatch_is_a_pure_function_of_the_schedule(self):
        # Same schedule calls -> same dispatch order, bit for bit.
        def run():
            kernel, log = make_kernel()
            kernel.schedule(2.0, 1, "a")
            kernel.schedule(1.0, 9, "b", {"x": 1})
            kernel.schedule(1.0, 2, "c")
            kernel.schedule(2.0, 0, "b")
            while kernel.peek() is not None:
                kernel.run_next()
            return log

        assert run() == run()


class TestScheduling:
    def test_unregistered_kind_rejected(self):
        kernel, _ = make_kernel()
        with pytest.raises(KernelError):
            kernel.schedule(1.0, 0, "nope")

    def test_scheduling_in_the_past_rejected(self):
        kernel, _ = make_kernel()
        kernel.clock.advance(10.0)
        with pytest.raises(KernelError):
            kernel.schedule(9.0, 0, "a")

    def test_scheduling_at_now_allowed(self):
        kernel, log = make_kernel()
        kernel.clock.advance(10.0)
        kernel.schedule(10.0, 0, "a")
        kernel.run_next()
        assert log[0][0] == 10.0

    def test_duplicate_registration_rejected(self):
        kernel, _ = make_kernel()
        with pytest.raises(KernelError):
            kernel.register("a", lambda event: None)

    def test_run_next_on_empty_queue_raises(self):
        kernel, _ = make_kernel()
        with pytest.raises(KernelError):
            kernel.run_next()

    def test_handler_may_schedule_followups(self):
        kernel, log = make_kernel()
        fired = []

        def periodic(event):
            fired.append(event.time)
            if event.time < 3.0:
                kernel.schedule(event.time + 1.0, 0, "tick")

        kernel.register("tick", periodic)
        kernel.schedule(1.0, 0, "tick")
        while kernel.peek() is not None:
            kernel.run_next()
        assert fired == [1.0, 2.0, 3.0]


class TestCancel:
    def test_cancelled_events_are_skipped(self):
        kernel, log = make_kernel()
        keep = kernel.schedule(1.0, 0, "a")
        drop = kernel.schedule(2.0, 0, "b")
        kernel.schedule(3.0, 0, "c")
        kernel.cancel(drop)
        while kernel.peek() is not None:
            kernel.run_next()
        assert [entry[2] for entry in log] == ["a", "c"]
        assert keep.cancelled is False

    def test_cancelled_events_excluded_from_pending_and_peek(self):
        kernel, _ = make_kernel()
        first = kernel.schedule(1.0, 0, "a")
        kernel.schedule(2.0, 0, "b")
        kernel.cancel(first)
        assert kernel.peek().kind == "b"
        assert [e.kind for e in kernel.pending] == ["b"]


class TestInspection:
    def test_pending_is_sorted_snapshot(self):
        kernel, _ = make_kernel()
        kernel.schedule(3.0, 0, "c")
        kernel.schedule(1.0, 5, "a")
        kernel.schedule(1.0, 2, "b")
        assert [(e.time, e.priority) for e in kernel.pending] == [
            (1.0, 2), (1.0, 5), (3.0, 0),
        ]

    def test_next_of_finds_earliest_of_kind(self):
        kernel, _ = make_kernel()
        kernel.schedule(5.0, 0, "a")
        kernel.schedule(2.0, 0, "b")
        kernel.schedule(3.0, 0, "a")
        assert kernel.next_of("a").time == 3.0
        assert kernel.next_of("nope") is None


class TestRunUntil:
    def test_time_bound_is_exclusive(self):
        kernel, log = make_kernel()
        kernel.schedule(1.0, 0, "a")
        kernel.schedule(2.0, 0, "b")
        kernel.schedule(2.0, 5, "c")
        assert kernel.run_until(2.0) == 1
        assert [entry[2] for entry in log] == ["a"]

    def test_lexicographic_bound_admits_lower_priorities_at_time(self):
        kernel, log = make_kernel()
        kernel.schedule(2.0, 1, "a")
        kernel.schedule(2.0, 9, "b")
        assert kernel.run_until(2.0, priority=5) == 1
        assert [entry[2] for entry in log] == ["a"]


class TestCheckpoint:
    def test_round_trip_preserves_queue_and_order(self):
        kernel, log = make_kernel()
        kernel.schedule(1.0, 0, "a", {"i": 0})
        kernel.schedule(2.0, 3, "b")
        kernel.schedule(2.0, 1, "c", {"deep": {"x": [1, 2]}})
        kernel.run_next()  # consume the first event

        snapshot = json.loads(json.dumps(kernel.checkpoint()))

        replica_log = []
        replica, _ = make_kernel(replica_log)
        replica.restore(snapshot)
        assert replica.clock.now == 1.0
        while replica.peek() is not None:
            replica.run_next()
        assert [entry[2] for entry in replica_log] == ["c", "b"]
        assert replica_log[0][3] == {"deep": {"x": [1, 2]}}

    def test_restored_seq_counter_keeps_tiebreaks_stable(self):
        kernel, _ = make_kernel()
        kernel.schedule(5.0, 0, "a")
        snapshot = kernel.checkpoint()

        replica_log = []
        replica, _ = make_kernel(replica_log)
        replica.restore(snapshot)
        # A post-restore schedule at the same key must fire *after* the
        # restored event, exactly as it would have without the pause.
        replica.schedule(5.0, 0, "b")
        replica.run_next()
        replica.run_next()
        assert [entry[2] for entry in replica_log] == ["a", "b"]

    def test_cancelled_events_not_checkpointed(self):
        kernel, _ = make_kernel()
        kernel.schedule(1.0, 0, "a")
        dropped = kernel.schedule(2.0, 0, "b")
        kernel.cancel(dropped)
        snapshot = kernel.checkpoint()
        assert [entry[3] for entry in snapshot["events"]] == ["a"]

    def test_restore_rejects_unregistered_kind(self):
        kernel, _ = make_kernel()
        kernel.schedule(1.0, 0, "a")
        snapshot = kernel.checkpoint()
        snapshot["events"][0][3] = "unknown"
        fresh, _ = make_kernel()
        with pytest.raises(KernelError):
            fresh.restore(snapshot)
