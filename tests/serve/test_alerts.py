"""The alert engine: hysteresis, hold, lifecycle, and rule files."""

import json
import math

import pytest

from repro.errors import AlertRuleError, SensorError
from repro.serve import (
    AlertEngine,
    AlertRule,
    default_rules,
    load_rules,
    parse_rules,
)
from repro.serve.alerts import STATE_ACKED, STATE_FIRING, STATE_OK
from repro.telemetry import Telemetry


def reader(value):
    """A temperature reader always returning ``value``."""
    return lambda machine, component: value


def test_fires_at_threshold_inclusive():
    engine = AlertEngine([AlertRule(name="hot", threshold=67.0)])
    assert engine.evaluate(0.0, reader(66.9), ["m1"]) == []
    transitions = engine.evaluate(1.0, reader(67.0), ["m1"])
    assert transitions == [
        {"rule": "hot", "machine": "m1", "state": STATE_FIRING,
         "value": 67.0, "time": 1.0}
    ]
    assert engine.states() == [
        {"rule": "hot", "machine": "m1", "state": STATE_FIRING, "value": 67.0}
    ]
    assert len(engine.active()) == 1


def test_hysteresis_band_preserves_state_both_ways():
    rule = AlertRule(name="hot", threshold=67.0, clear_below=65.0)
    engine = AlertEngine([rule])
    # In the band while OK: stays OK (no transition).
    assert engine.evaluate(0.0, reader(66.0), ["m1"]) == []
    assert engine.states()[0]["state"] == STATE_OK
    # Fire, then dither inside the band: stays firing.
    engine.evaluate(1.0, reader(68.0), ["m1"])
    assert engine.evaluate(2.0, reader(66.0), ["m1"]) == []
    assert engine.states()[0]["state"] == STATE_FIRING
    # Exactly the floor is still inside the band (resolve is exclusive).
    assert engine.evaluate(3.0, reader(65.0), ["m1"]) == []
    assert engine.states()[0]["state"] == STATE_FIRING
    # Below the floor resolves.
    transitions = engine.evaluate(4.0, reader(64.9), ["m1"])
    assert transitions[0]["state"] == STATE_OK
    assert engine.incidents[-1].resolved_at == 4.0
    assert engine.active() == []


def test_hold_requires_continuous_exceedance():
    rule = AlertRule(name="hot", threshold=67.0, clear_below=65.0, hold=10.0)
    engine = AlertEngine([rule])
    assert engine.evaluate(0.0, reader(70.0), ["m1"]) == []  # hold started
    assert engine.evaluate(5.0, reader(70.0), ["m1"]) == []  # 5s < hold
    # A dip below the threshold resets the hold clock.
    assert engine.evaluate(6.0, reader(66.0), ["m1"]) == []
    assert engine.evaluate(7.0, reader(70.0), ["m1"]) == []
    assert engine.evaluate(16.0, reader(70.0), ["m1"]) == []  # 9s < hold
    transitions = engine.evaluate(17.0, reader(70.0), ["m1"])
    assert transitions[0]["state"] == STATE_FIRING
    assert transitions[0]["time"] == 17.0


def test_ack_lifecycle_and_refire_after_resolve():
    engine = AlertEngine([AlertRule(name="hot", threshold=67.0,
                                    clear_below=65.0)])
    # Cannot ack what never fired.
    assert engine.ack("hot", "m1", 0.0) is False
    engine.evaluate(1.0, reader(70.0), ["m1"])
    assert engine.ack("hot", "m1", 2.0) is True
    assert engine.states()[0]["state"] == STATE_ACKED
    assert engine.incidents[0].acked_at == 2.0
    # Acked is not firing: a second ack is a no-op.
    assert engine.ack("hot", "m1", 3.0) is False
    # Still hot: acked stays silent (no transitions).
    assert engine.evaluate(4.0, reader(70.0), ["m1"]) == []
    # Resolves from acked once below the floor.
    transitions = engine.evaluate(5.0, reader(60.0), ["m1"])
    assert transitions[0]["state"] == STATE_OK
    # A new exceedance opens a fresh, unacknowledged incident.
    transitions = engine.evaluate(6.0, reader(70.0), ["m1"])
    assert transitions[0]["state"] == STATE_FIRING
    assert len(engine.incidents) == 2
    assert engine.incidents[1].acked_at is None


def test_sensor_dropout_holds_state():
    def dropout(machine, component):
        raise SensorError("injected dropout")

    engine = AlertEngine([AlertRule(name="hot", threshold=67.0)])
    engine.evaluate(0.0, reader(70.0), ["m1"])
    assert engine.states()[0]["state"] == STATE_FIRING
    assert engine.evaluate(1.0, dropout, ["m1"]) == []
    assert engine.states()[0]["state"] == STATE_FIRING


def test_incident_tracks_peak():
    engine = AlertEngine([AlertRule(name="hot", threshold=67.0,
                                    clear_below=65.0)])
    engine.evaluate(0.0, reader(68.0), ["m1"])
    engine.evaluate(1.0, reader(72.0), ["m1"])
    engine.evaluate(2.0, reader(69.0), ["m1"])
    assert engine.incidents[0].peak == 72.0
    assert engine.incidents[0].value == 68.0


def test_rule_targets_and_per_machine_state():
    rule = AlertRule(name="hot", threshold=67.0, machines=("m1",))
    engine = AlertEngine([rule])
    engine.evaluate(0.0, reader(70.0), ["m1", "m2"])
    # Only the targeted machine is evaluated.
    assert [s["machine"] for s in engine.states()] == ["m1"]


def test_telemetry_export():
    telemetry = Telemetry()
    engine = AlertEngine(
        [AlertRule(name="hot", threshold=67.0, clear_below=65.0)],
        telemetry=telemetry,
    )
    engine.evaluate(0.0, reader(70.0), ["m1"])
    engine.ack("hot", "m1", 1.0)
    engine.evaluate(2.0, reader(60.0), ["m1"])
    registry = telemetry.registry
    labels = {"rule": "hot", "machine": "m1"}
    assert registry.value("alerts_fired_total", labels) == 1.0
    assert registry.value("alerts_acked_total", labels) == 1.0
    assert registry.value("alerts_resolved_total", labels) == 1.0
    assert registry.value("alert_state", labels) == 0.0


def test_duplicate_rule_names_rejected():
    with pytest.raises(AlertRuleError, match="duplicate"):
        AlertEngine([
            AlertRule(name="hot", threshold=67.0),
            AlertRule(name="hot", threshold=80.0),
        ])


@pytest.mark.parametrize("kwargs", [
    {"name": "bad name", "threshold": 67.0},
    {"name": "", "threshold": 67.0},
    {"name": "hot", "threshold": 67.0, "clear_below": 67.0},
    {"name": "hot", "threshold": 67.0, "clear_below": 70.0},
    {"name": "hot", "threshold": 67.0, "clear_below": math.nan},
    {"name": "hot", "threshold": math.nan},
    {"name": "hot", "threshold": 67.0, "hold": -1.0},
    {"name": "hot", "threshold": 67.0, "machines": ()},
])
def test_invalid_rules_rejected(kwargs):
    with pytest.raises(AlertRuleError):
        AlertRule(**kwargs)


def test_default_clear_below_is_two_degrees_under():
    rule = AlertRule(name="hot", threshold=67.0)
    assert rule.clear_below == 65.0


def test_default_rules():
    (rule,) = default_rules(threshold=70.0, clear_below=68.0)
    assert rule.name == "cpu_over_threshold"
    assert rule.threshold == 70.0
    assert rule.clear_below == 68.0


# -- rule files --------------------------------------------------------------


def test_load_rules_json(tmp_path):
    path = tmp_path / "rules.json"
    path.write_text(json.dumps({
        "rules": [
            {"name": "hot", "threshold": 67.0, "clear_below": 65.0},
            {"name": "disk", "threshold": 55.0, "component": "disk",
             "hold": 30.0, "machines": ["machine1"]},
        ]
    }))
    rules = load_rules(path)
    assert [r.name for r in rules] == ["hot", "disk"]
    assert rules[1].machines == ("machine1",)
    assert rules[1].hold == 30.0


def test_load_rules_toml(tmp_path):
    path = tmp_path / "rules.toml"
    path.write_text(
        '[[rule]]\nname = "hot"\nthreshold = 67.0\nclear_below = 65.0\n'
        '\n[[rule]]\nname = "disk"\ncomponent = "disk"\nthreshold = 55.0\n'
    )
    rules = load_rules(path)
    assert [r.name for r in rules] == ["hot", "disk"]
    assert rules[1].component == "disk"


@pytest.mark.parametrize("text,match", [
    ("{bad json", "invalid JSON"),
    ("{}", "no rules found"),
    ('{"rules": {}}', "must be an array"),
    ('{"rules": [42]}', "must be a table"),
    ('{"rules": [{"name": "hot"}]}', "needs 'name' and 'threshold'"),
    ('{"rules": [{"name": "hot", "threshold": 1, "color": "red"}]}',
     "unknown rule fields"),
    ('{"rules": [{"name": "hot", "threshold": 1, "machines": "m1"}]}',
     "machines must be a list"),
    ('{"rules": [{"name": "a", "threshold": 9}, '
     '{"name": "a", "threshold": 9}]}', "duplicate"),
])
def test_rule_file_validation_errors(tmp_path, text, match):
    path = tmp_path / "rules.json"
    path.write_text(text)
    with pytest.raises(AlertRuleError, match=match):
        load_rules(path)


def test_invalid_toml_rejected(tmp_path):
    path = tmp_path / "rules.toml"
    path.write_text("[[rule\n")
    with pytest.raises(AlertRuleError, match="invalid TOML"):
        load_rules(path)


def test_parse_rules_rejects_non_mapping_document():
    with pytest.raises(AlertRuleError, match="table/object"):
        parse_rules([1, 2, 3])
