"""The live thermal service: HTTP plane, SSE, alerts, golden fidelity."""

import asyncio
import io
import json

import pytest

from repro.cli import main
from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.errors import ServeError
from repro.serve import AlertEngine, AlertRule, ThermalService, http_get
from repro.telemetry import CONTENT_TYPE_LATEST, Telemetry
from repro.telemetry.exposition import parse_prometheus

from ..golden.traces import GOLDEN_DIR, TOLERANCE


def run(coro):
    return asyncio.run(coro)


def make_simulation(**kwargs):
    kwargs.setdefault("policy", "freon")
    kwargs.setdefault("fiddle_script", emergency_script())
    kwargs.setdefault("telemetry", Telemetry())
    return ClusterSimulation(**kwargs)


def test_golden_fig11_identical_with_service_attached():
    """Attaching the service must not perturb the simulation at all."""
    stored = json.loads((GOLDEN_DIR / "fig11_first120s.json").read_text())

    async def scenario():
        simulation = make_simulation()
        async with ThermalService(simulation) as service:
            await service.serve(duration=120.0, pace=0.0)
        return simulation

    simulation = run(scenario())
    result = simulation.result()
    assert result.times() == stored["times"]
    for machine, expected in stored["series"].items():
        actual = result.series(machine, "cpu_temperature")
        assert len(actual) == len(expected)
        for a, e in zip(actual, expected):
            assert abs(a - e) <= TOLERANCE


def test_metrics_roundtrip_through_parse_prometheus():
    async def scenario():
        async with ThermalService(make_simulation()) as service:
            await service.serve(duration=60.0, pace=0.0)
            host, port = service.address
            status, headers, body = await http_get(host, port, "/metrics")
            assert status == 200
            assert headers["content-type"] == CONTENT_TYPE_LATEST
            text = body.decode("utf-8")
            assert "# HELP" in text and "# TYPE" in text
            parsed = parse_prometheus(text)
            names = {name for name, _ in parsed}
            assert "serve_frames_total" in names
            assert "serve_scrapes_total" in names
            assert any(name.startswith("cluster_") for name in names)

    run(scenario())


def test_json_api_status_series_and_health():
    async def scenario():
        async with ThermalService(make_simulation()) as service:
            await service.serve(duration=60.0, pace=0.0)
            host, port = service.address

            status, _, body = await http_get(host, port, "/api/status")
            summary = json.loads(body)
            assert status == 200
            assert summary["done"] is True
            assert summary["time"] == 60.0
            assert summary["policy"] == "freon"
            assert len(summary["machines"]) == 4

            status, _, body = await http_get(
                host, port, "/api/series?machine=machine1&points=3"
            )
            data = json.loads(body)
            assert status == 200
            assert len(data["times"]) == 3
            assert list(data["series"]) == ["machine1"]
            assert len(data["series"]["machine1"]["cpu"]) == 3
            assert len(data["active_servers"]) == 3

            status, _, body = await http_get(
                host, port, "/api/series?machine=nope"
            )
            assert status == 404
            status, _, _ = await http_get(
                host, port, "/api/series?points=many"
            )
            assert status == 400

            status, _, body = await http_get(host, port, "/healthz")
            assert status == 200
            assert json.loads(body)["ok"] is True

    run(scenario())


def test_dashboard_pages():
    async def scenario():
        async with ThermalService(make_simulation()) as service:
            service.advance(10)
            host, port = service.address
            status, headers, body = await http_get(host, port, "/")
            assert status == 200
            assert headers["content-type"].startswith("text/html")
            page = body.decode("utf-8")
            assert "EventSource" in page and "/stream" in page
            status, _, body = await http_get(host, port, "/dashboard.txt")
            assert status == 200
            assert "ALERTS" in body.decode("utf-8")

    run(scenario())


def test_sse_stream_hello_replay_live_and_alert_frames():
    async def scenario():
        simulation = make_simulation()
        alerts = AlertEngine(
            # Fires immediately: ambient is well above 0.
            [AlertRule(name="always", threshold=0.1, clear_below=0.0)],
            telemetry=simulation.telemetry,
        )
        async with ThermalService(simulation, alerts=alerts) as service:
            service.advance(1)  # one frame exists before the client joins
            host, port = service.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")

            hello = (await reader.readuntil(b"\n\n")).decode()
            assert hello.startswith("event: hello\n")
            meta = json.loads(hello.split("data: ", 1)[1])
            assert meta["policy"] == "freon"
            assert len(meta["machines"]) == 4

            replay = (await reader.readuntil(b"\n\n")).decode()
            assert replay.startswith("event: tick\n")

            # The first advance() fired one alert per machine; those
            # frames were broadcast before we subscribed, so drain the
            # live frames of a fresh advance instead.
            service.advance(1)
            live = (await reader.readuntil(b"\n\n")).decode()
            assert live.startswith("event: tick\n")
            frame = json.loads(live.split("data: ", 1)[1])
            assert frame["alerts"][0]["state"] == "firing"
            writer.close()

    run(scenario())


def test_alert_fires_and_acks_over_http():
    async def scenario():
        simulation = make_simulation()
        alerts = AlertEngine(
            [AlertRule(name="always", threshold=0.1, clear_below=0.0)],
            telemetry=simulation.telemetry,
        )
        async with ThermalService(simulation, alerts=alerts) as service:
            service.advance(1)
            host, port = service.address

            status, _, body = await http_get(host, port, "/api/alerts")
            data = json.loads(body)
            assert status == 200
            assert all(s["state"] == "firing" for s in data["states"])
            assert len(data["incidents"]) == 4

            status, _, body = await http_get(
                host, port,
                "/api/alerts/ack?rule=always&machine=machine1",
                method="POST",
            )
            assert status == 200
            assert json.loads(body)["acked"] is True

            # Already acked: not firing any more.
            status, _, _ = await http_get(
                host, port,
                "/api/alerts/ack?rule=always&machine=machine1",
                method="POST",
            )
            assert status == 404
            status, _, _ = await http_get(
                host, port, "/api/alerts/ack?rule=always", method="POST"
            )
            assert status == 400

            status, _, body = await http_get(host, port, "/api/alerts")
            states = {
                s["machine"]: s["state"]
                for s in json.loads(body)["states"]
            }
            assert states["machine1"] == "acked"
            assert states["machine2"] == "firing"

    run(scenario())


def test_default_alert_rule_uses_policy_thresholds():
    simulation = make_simulation()
    service = ThermalService(simulation)
    (rule,) = service.alerts.rules
    assert rule.threshold == simulation.config.high("cpu")
    assert rule.clear_below == simulation.config.low("cpu")


def test_paced_serving_tracks_wall_clock():
    async def scenario():
        async with ThermalService(make_simulation()) as service:
            # 20 simulated seconds at 200x => ~0.1 wall seconds.
            await asyncio.wait_for(
                service.serve(duration=20.0, pace=200.0), timeout=10.0
            )
            assert service.simulation.time == 20.0
            assert service.done is True

    run(scenario())


def test_validation_errors():
    simulation = make_simulation()
    with pytest.raises(ServeError, match="history"):
        ThermalService(simulation, history=0)

    async def bad_pace():
        async with ThermalService(make_simulation()) as service:
            await service.serve(duration=1.0, pace=-1.0)

    with pytest.raises(ServeError, match="pace"):
        run(bad_pace())

    async def bad_frame_every():
        async with ThermalService(make_simulation()) as service:
            await service.serve(duration=1.0, frame_every=0.0)

    with pytest.raises(ServeError, match="frame_every"):
        run(bad_frame_every())


# -- CLI ---------------------------------------------------------------------


def test_cli_serve_probe_smoke():
    out = io.StringIO()
    code = main(
        ["serve", "--pace", "0", "--duration", "120", "--probe"], out=out
    )
    text = out.getvalue()
    assert code == 0, text
    assert "serving http://127.0.0.1:" in text
    assert "probe: PASS" in text


def test_cli_serve_with_rule_file(tmp_path):
    rules = tmp_path / "rules.json"
    rules.write_text(json.dumps({
        "rules": [{"name": "chilly", "threshold": 0.5, "clear_below": 0.0}]
    }))
    out = io.StringIO()
    code = main(
        ["serve", "--pace", "0", "--duration", "60",
         "--rules", str(rules), "--probe"],
        out=out,
    )
    text = out.getvalue()
    assert code == 0, text
    # The 0.5 C rule fires on every machine.
    assert "4 alert incident(s)" in text


def test_cli_serve_rejects_bad_rule_file(tmp_path):
    rules = tmp_path / "rules.json"
    rules.write_text("{}")
    out = io.StringIO()
    code = main(["serve", "--rules", str(rules)], out=out)
    assert code == 1
    assert "no rules found" in out.getvalue()
