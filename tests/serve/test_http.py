"""The asyncio HTTP carrier: parsing, routing, SSE frame format."""

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.serve import EventStream, HttpServer, Response, http_get, sse_frame


def run(coro):
    return asyncio.run(coro)


# -- SSE frame formatting ----------------------------------------------------


def test_sse_frame_plain_string():
    assert sse_frame("hello") == b"data: hello\n\n"


def test_sse_frame_multiline_data_splits_per_spec():
    frame = sse_frame("line one\nline two")
    assert frame == b"data: line one\ndata: line two\n\n"


def test_sse_frame_json_payload_is_compact_and_sorted():
    frame = sse_frame({"b": 2, "a": 1}, event="tick", id="7")
    assert frame == b'event: tick\nid: 7\ndata: {"a":1,"b":2}\n\n'


def test_sse_frame_event_name_may_not_span_lines():
    with pytest.raises(ServeError, match="span lines"):
        sse_frame("x", event="evil\nname")


def test_sse_frame_ends_with_blank_line():
    # The blank line is the frame terminator; without it no client
    # dispatches the event.
    assert sse_frame({"a": 1}).endswith(b"\n\n")


# -- server ------------------------------------------------------------------


async def _with_server(routes, check):
    server = HttpServer()
    for method, path, handler in routes:
        server.route(method, path, handler)
    await server.start()
    try:
        host, port = server.address
        await check(server, host, port)
    finally:
        await server.stop()


def test_ephemeral_port_bound_and_exposed():
    async def check(server, host, port):
        assert host == "127.0.0.1"
        assert port > 0
        assert server.port == port

    run(_with_server([], check))


def test_address_before_start_raises():
    server = HttpServer()
    with pytest.raises(ServeError, match="not started"):
        server.address


def test_duplicate_route_rejected():
    server = HttpServer()

    async def handler(request):
        return Response.text("x")

    server.route("GET", "/x", handler)
    with pytest.raises(ServeError, match="already registered"):
        server.route("GET", "/x", handler)


def test_request_routing_and_statuses():
    async def hello(request):
        return Response.json({"who": request.param("who", "world")})

    async def boom(request):
        raise RuntimeError("handler bug")

    async def check(server, host, port):
        status, headers, body = await http_get(host, port, "/hello?who=repro")
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert json.loads(body) == {"who": "repro"}

        status, _, _ = await http_get(host, port, "/nope")
        assert status == 404
        status, _, _ = await http_get(host, port, "/hello", method="POST")
        assert status == 405
        status, _, _ = await http_get(host, port, "/boom")
        assert status == 500
        assert server.served[200] == 1
        assert server.served[404] == 1
        assert server.served[405] == 1
        assert server.served[500] == 1

    run(_with_server(
        [("GET", "/hello", hello), ("GET", "/boom", boom)], check
    ))


def test_malformed_request_line_is_400():
    async def check(server, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"NONSENSE\r\n\r\n")
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert b"400 Bad Request" in head
        writer.close()

    run(_with_server([], check))


def test_event_stream_drains_to_client():
    async def frames():
        yield sse_frame({"n": 1}, event="tick")
        yield sse_frame({"n": 2}, event="tick")

    async def stream(request):
        return EventStream(frames())

    async def check(server, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        assert b"text/event-stream" in head
        one = await reader.readuntil(b"\n\n")
        two = await reader.readuntil(b"\n\n")
        assert b'{"n":1}' in one
        assert b'{"n":2}' in two
        writer.close()

    run(_with_server([("GET", "/stream", stream)], check))


def test_stop_cancels_inflight_streams():
    async def frames():
        yield sse_frame("first")
        await asyncio.sleep(3600)  # stream that never ends on its own

    async def stream(request):
        return EventStream(frames())

    async def scenario():
        server = HttpServer()
        server.route("GET", "/stream", stream)
        await server.start()
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /stream HTTP/1.1\r\nHost: x\r\n\r\n")
        await writer.drain()
        await reader.readuntil(b"\n\n")
        # stop() must cancel the hung stream handler, not hang itself.
        await asyncio.wait_for(server.stop(), timeout=5.0)
        writer.close()

    run(scenario())
