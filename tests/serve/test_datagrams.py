"""The asyncio datagram endpoints speak the existing wire protocols."""

import asyncio

import pytest

from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.solver import Solver
from repro.daemons.tempd import TempdMessage
from repro.daemons.transport import encode_message
from repro.errors import ServeError
from repro.sensors.protocol import (
    SensorQuery,
    SensorReply,
    STATUS_OK,
    UtilizationUpdate,
)
from repro.sensors.server import SensorService
from repro.serve import AsyncAdmdListener, AsyncUdpSensorServer
from repro.telemetry import Telemetry


def run(coro):
    return asyncio.run(coro)


def make_service():
    layout = validation_machine()
    solver = Solver([layout], record=False)
    return layout, SensorService(solver, aliases=table1.sensor_map())


class _Client(asyncio.DatagramProtocol):
    """A test client capturing every reply datagram."""

    def __init__(self):
        self.replies = asyncio.Queue()

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.replies.put_nowait(data)


async def _client_for(address):
    loop = asyncio.get_running_loop()
    protocol = _Client()
    transport, _ = await loop.create_datagram_endpoint(
        lambda: protocol, remote_addr=address
    )
    return transport, protocol


def test_query_roundtrip_on_ephemeral_port():
    async def scenario():
        layout, service = make_service()
        async with AsyncUdpSensorServer(service) as server:
            assert server.port > 0
            transport, client = await _client_for(server.address)
            query = SensorQuery(
                request_id=7, machine=layout.name, component=table1.CPU
            )
            transport.sendto(query.encode())
            reply = SensorReply.decode(
                await asyncio.wait_for(client.replies.get(), 5.0)
            )
            assert reply.request_id == 7
            assert reply.status == STATUS_OK
            assert reply.temperature > 0.0
            assert server.received == 1
            assert server.replied == 1
            transport.close()

    run(scenario())


def test_update_applies_utilizations():
    async def scenario():
        layout, service = make_service()
        async with AsyncUdpSensorServer(service) as server:
            transport, client = await _client_for(server.address)
            update = UtilizationUpdate(
                machine=layout.name, utilizations={table1.CPU: 1.0}
            )
            transport.sendto(update.encode())
            for _ in range(100):
                if service.updates_applied:
                    break
                await asyncio.sleep(0.01)
            assert service.updates_applied == 1
            transport.close()

    run(scenario())


def test_malformed_datagrams_counted_and_dropped():
    async def scenario():
        _, service = make_service()
        telemetry = Telemetry()
        async with AsyncUdpSensorServer(service, telemetry=telemetry) as server:
            transport, client = await _client_for(server.address)
            transport.sendto(b"junk")
            # A query-sized datagram with a bad magic is also malformed.
            transport.sendto(b"\x00" * SensorQuery(
                request_id=0, machine="m", component="c"
            ).encode().__len__())
            for _ in range(100):
                if server.malformed >= 2:
                    break
                await asyncio.sleep(0.01)
            assert server.malformed == 2
            assert server.replied == 0
            assert telemetry.registry.value(
                "serve_sensor_datagrams_malformed_total"
            ) == 2.0
            transport.close()

    run(scenario())


def test_sensor_endpoint_lifecycle_errors():
    async def scenario():
        _, service = make_service()
        server = AsyncUdpSensorServer(service)
        with pytest.raises(ServeError, match="not started"):
            server.address
        await server.start()
        with pytest.raises(ServeError, match="already started"):
            await server.start()
        await server.stop()
        await server.stop()  # idempotent

    run(scenario())


def test_admd_listener_delivers_and_counts_malformed():
    async def scenario():
        got = []
        telemetry = Telemetry()
        async with AsyncAdmdListener(got.append, telemetry=telemetry) as admd:
            assert admd.port > 0
            transport, _ = await _client_for(admd.address)
            message = TempdMessage(
                type="report", machine="m1", time=1.0,
                temperatures={"cpu": 60.0},
            )
            transport.sendto(encode_message(message))
            transport.sendto(b"{not json")
            for _ in range(100):
                if got and admd.malformed:
                    break
                await asyncio.sleep(0.01)
            assert len(got) == 1
            assert got[0].machine == "m1"
            assert got[0].temperatures == {"cpu": 60.0}
            assert admd.received == 1
            assert admd.malformed == 1
            # Same family names as the threaded listener: one message
            # plane regardless of transport.
            assert telemetry.registry.value(
                "freon_udp_messages_received_total"
            ) == 1.0
            transport.close()

    run(scenario())


def test_admd_listener_not_started_raises():
    admd = AsyncAdmdListener(lambda message: None)
    with pytest.raises(ServeError, match="not started"):
        admd.address
