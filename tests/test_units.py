"""Tests for unit conversions and physical constants."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_cfm_round_trip(self):
        assert units.m3s_to_cfm(units.cfm_to_m3s(38.6)) == pytest.approx(38.6)

    def test_known_cfm_value(self):
        # 1 ft^3/min = 0.000471947 m^3/s.
        assert units.cfm_to_m3s(1.0) == pytest.approx(4.719474e-4, rel=1e-5)

    def test_celsius_kelvin(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
        assert units.kelvin_to_celsius(373.15) == pytest.approx(100.0)

    def test_watt_hours(self):
        assert units.watt_hours(3600.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_cfm_round_trip_property(self, value):
        assert units.m3s_to_cfm(units.cfm_to_m3s(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-12
        )

    @given(st.floats(min_value=-273.15, max_value=1e4))
    def test_temperature_round_trip_property(self, celsius):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(celsius)
        ) == pytest.approx(celsius, abs=1e-9)


class TestAirProperties:
    def test_mass_flow(self):
        assert units.air_mass_flow(1.0) == pytest.approx(units.AIR_DENSITY)

    def test_heat_capacity_rate(self):
        # The validation fan: 38.6 cfm -> about 21 W/K of cooling stream.
        rate = units.air_heat_capacity_rate(units.cfm_to_m3s(38.6))
        assert rate == pytest.approx(21.2, abs=0.5)

    def test_table1_material_heats(self):
        assert units.ALUMINUM_SPECIFIC_HEAT == 896.0
        assert units.FR4_SPECIFIC_HEAT == 1245.0
