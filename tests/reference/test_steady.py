"""Tests for the steady-state finite-volume reference solver."""

import numpy as np
import pytest

from repro.reference.mesh import standard_case
from repro.reference.steady import solve_steady


@pytest.fixture(scope="module")
def base_result():
    return solve_steady(standard_case(cpu_power=20.0, disk_power=10.0))


class TestPhysicalSanity:
    def test_converges(self, base_result):
        assert base_result.iterations < 30

    def test_everything_at_or_above_inlet(self, base_result):
        assert base_result.temperatures.min() >= 21.6 - 1e-6

    def test_blocks_hotter_than_their_air(self, base_result):
        for name in ("cpu", "disk", "psu"):
            assert base_result.block_temperature(
                name
            ) > base_result.local_air_temperature(name)

    def test_peak_at_least_mean(self, base_result):
        for name in ("cpu", "disk", "psu"):
            assert base_result.block_peak_temperature(
                name
            ) >= base_result.block_temperature(name)

    def test_outlet_warmer_than_inlet(self, base_result):
        assert base_result.outlet_temperature() > 21.6 + 1.0

    def test_outlet_energy_balance(self, base_result):
        # Advected enthalpy at the outlet should carry most of the 70 W
        # (the rest leaves by conduction through the inlet face).
        from repro import units

        mesh = base_result.mesh
        u = mesh.inlet_velocity
        open_cells = sum(1 for y in range(mesh.ny) if mesh.is_air(0, y))
        flow = u * open_cells * mesh.cell_size * mesh.depth
        carried = units.air_heat_capacity_rate(flow) * (
            base_result.outlet_temperature() - mesh.inlet_temperature
        )
        total = sum(b.power for b in mesh.blocks.values())
        assert carried == pytest.approx(total, rel=0.25)

    def test_downstream_cpu_sees_warm_air(self, base_result):
        assert base_result.local_air_temperature(
            "cpu"
        ) > base_result.mesh.inlet_temperature + 1.0


class TestPowerResponse:
    def test_zero_power_case_is_isothermal(self):
        result = solve_steady(
            standard_case(cpu_power=0.0, disk_power=0.0, psu_power=0.0)
        )
        assert result.temperatures.max() == pytest.approx(21.6, abs=0.01)

    def test_monotone_in_cpu_power(self):
        temps = [
            solve_steady(standard_case(cpu_power=p, disk_power=10.0))
            .block_temperature("cpu")
            for p in (10.0, 25.0, 40.0)
        ]
        assert temps[0] < temps[1] < temps[2]

    def test_near_linear_response(self):
        # The model is only mildly non-linear (air conductivity slope):
        # the CPU-power-to-temperature slope is nearly constant across
        # the range (disk and PSU contributions cancel in differences).
        temps = {
            p: solve_steady(standard_case(cpu_power=p, disk_power=8.0))
            .block_temperature("cpu")
            for p in (10.0, 20.0, 30.0, 40.0)
        }
        low_slope = (temps[20.0] - temps[10.0]) / 10.0
        high_slope = (temps[40.0] - temps[30.0]) / 10.0
        assert high_slope == pytest.approx(low_slope, rel=0.2)

    def test_disk_power_mostly_heats_disk(self):
        # Disk power raises the disk's own temperature several times more
        # than the downstream CPU's.
        lo = solve_steady(standard_case(cpu_power=20.0, disk_power=8.0))
        hi = solve_steady(standard_case(cpu_power=20.0, disk_power=14.0))
        cpu_shift = hi.block_temperature("cpu") - lo.block_temperature("cpu")
        disk_shift = hi.block_temperature("disk") - lo.block_temperature("disk")
        assert disk_shift > 3 * max(cpu_shift, 1e-9)

    def test_inlet_temperature_shifts_everything(self):
        cool = solve_steady(standard_case(inlet_temperature=21.6))
        warm = solve_steady(standard_case(inlet_temperature=31.6))
        shift = warm.block_temperature("cpu") - cool.block_temperature("cpu")
        assert shift == pytest.approx(10.0, abs=1.5)


class TestEffectiveConductance:
    def test_positive_and_stable(self):
        result = solve_steady(standard_case(cpu_power=20.0, disk_power=10.0))
        k = result.effective_conductance("cpu")
        assert 0.5 < k < 10.0

    def test_roughly_power_independent(self):
        # The lumped conductance is a property of geometry/flow, so it
        # should move only a few percent across the power range.
        ks = [
            solve_steady(standard_case(cpu_power=p, disk_power=10.0))
            .effective_conductance("cpu")
            for p in (10.0, 40.0)
        ]
        assert abs(ks[1] - ks[0]) / ks[0] < 0.10

    def test_requires_heated_block(self):
        result = solve_steady(
            standard_case(cpu_power=0.0, disk_power=0.0, psu_power=0.0)
        )
        with pytest.raises(ValueError):
            result.effective_conductance("cpu")

    def test_warm_start_converges_faster(self):
        mesh = standard_case(cpu_power=20.0, disk_power=10.0)
        cold = solve_steady(mesh)
        mesh.set_power("cpu", 22.0)
        warm = solve_steady(mesh, initial=cold.temperatures)
        assert warm.iterations <= cold.iterations
