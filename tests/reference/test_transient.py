"""Tests for the transient reference integrator."""

import numpy as np
import pytest

from repro.reference.mesh import standard_case
from repro.reference.steady import solve_steady
from repro.reference.transient import solve_transient, stable_dt


@pytest.fixture(scope="module")
def mesh():
    return standard_case(cpu_power=20.0, disk_power=10.0)


@pytest.fixture(scope="module")
def steady(mesh):
    return solve_steady(mesh)


class TestStability:
    def test_stable_dt_positive_and_small(self, mesh):
        dt = stable_dt(mesh)
        assert 0.0 < dt < 1.0

    def test_no_blowup_at_stable_dt(self, mesh):
        result = solve_transient(mesh, duration=50.0)
        assert np.isfinite(result.final).all()
        assert result.final.max() < 200.0

    def test_rejects_bad_args(self, mesh):
        with pytest.raises(ValueError):
            solve_transient(mesh, duration=0.0)
        with pytest.raises(ValueError):
            solve_transient(mesh, duration=10.0, dt=0.0)


class TestPhysics:
    def test_cold_start_rises_monotonically(self, mesh):
        result = solve_transient(mesh, duration=300.0, sample_every=30.0)
        for name in ("cpu", "disk", "psu"):
            series = result.block_history[name]
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_never_below_inlet(self, mesh):
        result = solve_transient(mesh, duration=200.0)
        assert result.final.min() >= mesh.inlet_temperature - 1e-6

    def test_steady_field_is_a_fixed_point(self, mesh, steady):
        # Starting *at* the steady solution, the transient integrator
        # should stay there — the two discretizations agree.
        result = solve_transient(
            mesh, duration=100.0, initial=steady.temperatures,
            sample_every=100.0,
        )
        for name in ("cpu", "disk", "psu"):
            drift = abs(
                result.block_temperature(name) - steady.block_temperature(name)
            )
            assert drift < 0.3, name

    def test_approaches_steady_from_below(self, mesh, steady):
        result = solve_transient(mesh, duration=800.0, sample_every=100.0)
        for name in ("cpu", "disk"):
            final = result.block_temperature(name)
            target = steady.block_temperature(name)
            start = mesh.inlet_temperature
            progress = (final - start) / (target - start)
            assert 0.5 < progress <= 1.02, name

    def test_time_constants_ordered_by_mass(self, mesh):
        # The aluminium PSU block holds far more heat than the small CPU
        # package, so it responds more slowly.
        result = solve_transient(mesh, duration=800.0, sample_every=20.0)
        tau_cpu = result.time_to_fraction("cpu")
        tau_psu = result.time_to_fraction("psu")
        assert tau_psu > tau_cpu

    def test_time_to_fraction_degenerate(self, mesh):
        result = solve_transient(mesh, duration=20.0, sample_every=10.0)
        flat = dict(result.block_history)
        result.block_history["cpu"] = [30.0, 30.0, 30.0]
        assert result.time_to_fraction("cpu") == 0.0
        result.block_history.update(flat)
