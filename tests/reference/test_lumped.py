"""Tests for the lumped (Mercury) model of the 2-D case and its fit."""

import pytest

from repro.reference.lumped import (
    CASE_COMPONENTS,
    DEFAULT_FRACTIONS,
    calibrate_from_reference,
    case_flow_cfm,
    comparison_table,
    conductances_from_reference,
    lumped_case_layout,
    steady_temperatures,
)
from repro.reference.mesh import standard_case
from repro.reference.steady import solve_steady


@pytest.fixture(scope="module")
def calibration():
    # Two orthogonal points keep this affordable for the unit suite; the
    # benchmark uses the full grid.
    return calibrate_from_reference(
        calibration_powers=((15.0, 8.0), (15.0, 14.0), (35.0, 8.0), (35.0, 14.0))
    )


class TestLumpedLayout:
    def test_structure(self):
        layout = lumped_case_layout({"cpu": 2.0, "disk": 2.0, "psu": 4.0})
        assert set(layout.components) == set(CASE_COMPONENTS)
        assert layout.inlet == "Inlet"
        assert layout.exhaust == "Exhaust"

    def test_flow_matches_mesh(self):
        mesh = standard_case()
        layout = lumped_case_layout(
            {"cpu": 2.0, "disk": 2.0, "psu": 4.0}, mesh=mesh
        )
        assert layout.fan_cfm == pytest.approx(case_flow_cfm(mesh))

    def test_fraction_overrides(self):
        layout = lumped_case_layout(
            {"cpu": 2.0, "disk": 2.0, "psu": 4.0},
            fractions={"psu_to_cpu": 0.5},
        )
        fractions = {(e.src, e.dst): e.fraction for e in layout.air_edges}
        assert fractions[("PSU Air", "CPU Air")] == pytest.approx(0.5)

    def test_rejects_overfull_inlet(self):
        with pytest.raises(ValueError):
            lumped_case_layout(
                {"cpu": 2.0, "disk": 2.0, "psu": 4.0},
                fractions={"inlet_disk": 0.7, "inlet_psu": 0.7},
            )

    def test_steady_temperatures_reach_fixpoint(self):
        layout = lumped_case_layout({"cpu": 2.0, "disk": 2.0, "psu": 4.0})
        temps = steady_temperatures(
            layout, {"cpu": 20.0, "disk": 10.0, "psu": 40.0}
        )
        again = steady_temperatures(
            layout, {"cpu": 20.0, "disk": 10.0, "psu": 40.0}
        )
        assert temps["cpu"] == pytest.approx(again["cpu"], abs=0.05)
        assert temps["cpu"] > temps["Inlet"]


class TestConductancesFromReference:
    def test_extraction(self):
        result = solve_steady(standard_case(cpu_power=20.0, disk_power=10.0))
        ks = conductances_from_reference(result)
        assert set(ks) == set(CASE_COMPONENTS)
        assert all(v > 0 for v in ks.values())


class TestCalibration:
    def test_fit_quality(self, calibration):
        # Calibration points themselves should fit tightly.
        assert calibration.rmse < 0.2

    def test_fractions_within_bounds(self, calibration):
        for name, value in calibration.fractions.items():
            assert 0.0 < value < 1.0, name

    def test_learns_psu_bypass(self, calibration):
        # In the mesh most PSU exhaust passes above the CPU (wake
        # entrainment mixes some of it down); the fit must route less
        # than half the PSU stream over the CPU, and less than it routes
        # of the bypass stream.
        assert calibration.fractions["psu_to_cpu"] < 0.5
        assert (
            calibration.fractions["psu_to_cpu"]
            < calibration.fractions["bypass_to_cpu"]
        )


class TestComparisonTable:
    def test_section32_shape(self, calibration):
        # Interpolation (20 W) and extrapolation (40 W) points.
        rows = comparison_table(
            [(20.0, 10.0), (40.0, 10.0)], calibration=calibration
        )
        for row in rows:
            # The paper reports <=0.32 C for the CPU and <=0.25 C for the
            # disk; we allow a slightly wider band in the unit test.
            assert abs(row.cpu_error) < 0.6
            assert abs(row.disk_error) < 0.6

    def test_reference_and_mercury_track_power(self, calibration):
        rows = comparison_table(
            [(10.0, 10.0), (40.0, 10.0)], calibration=calibration
        )
        assert rows[1].reference_cpu > rows[0].reference_cpu + 10.0
        assert rows[1].mercury_cpu > rows[0].mercury_cpu + 10.0

    def test_row_error_properties(self, calibration):
        row = comparison_table([(20.0, 10.0)], calibration=calibration)[0]
        assert row.cpu_error == pytest.approx(
            row.mercury_cpu - row.reference_cpu
        )
        assert row.disk_error == pytest.approx(
            row.mercury_disk - row.reference_disk
        )
