"""Tests for the 2-D case mesh."""

import numpy as np
import pytest

from repro.reference.materials import AIR, ALUMINUM, PACKAGE, FR4, Material
from repro.reference.mesh import Block, CaseMesh, standard_case


class TestMaterials:
    def test_conductivity_at_reference(self):
        assert AIR.conductivity_at(25.0) == pytest.approx(AIR.conductivity)

    def test_conductivity_grows_with_temperature(self):
        assert AIR.conductivity_at(60.0) > AIR.conductivity_at(25.0)

    def test_conductivity_never_collapses(self):
        cold = AIR.conductivity_at(-1e6)
        assert cold == pytest.approx(0.1 * AIR.conductivity)

    def test_solids_constant(self):
        assert ALUMINUM.conductivity_at(80.0) == ALUMINUM.conductivity


class TestBlock:
    def test_cells(self):
        assert Block("b", 0, 0, 3, 2, PACKAGE).cells == 6

    def test_rejects_empty_extent(self):
        with pytest.raises(ValueError):
            Block("b", 2, 0, 2, 2, PACKAGE)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Block("b", 0, 0, 1, 1, PACKAGE, power=-1.0)


class TestCaseMesh:
    def test_standard_case_blocks(self):
        mesh = standard_case()
        assert set(mesh.blocks) == {"cpu", "disk", "psu"}

    def test_block_cells_are_solid(self):
        mesh = standard_case()
        for name in mesh.blocks:
            for x, y in mesh.block_cells(name):
                assert not mesh.is_air(x, y)

    def test_non_block_cells_are_air(self):
        mesh = standard_case()
        solid = {c for name in mesh.blocks for c in mesh.block_cells(name)}
        for y in range(mesh.ny):
            for x in range(mesh.nx):
                if (x, y) not in solid:
                    assert mesh.is_air(x, y)

    def test_source_density_matches_power(self):
        mesh = standard_case(cpu_power=20.0)
        block = mesh.blocks["cpu"]
        volume = block.cells * mesh.cell_size**2 * mesh.depth
        density = mesh.source[block.y0, block.x0]
        assert density * volume == pytest.approx(20.0)

    def test_set_power_updates_source(self):
        mesh = standard_case(cpu_power=20.0)
        mesh.set_power("cpu", 40.0)
        block = mesh.blocks["cpu"]
        volume = block.cells * mesh.cell_size**2 * mesh.depth
        assert mesh.source[block.y0, block.x0] * volume == pytest.approx(40.0)
        assert mesh.blocks["cpu"].power == 40.0

    def test_set_power_rejects_negative(self):
        with pytest.raises(ValueError):
            standard_case().set_power("cpu", -1.0)

    def test_overlapping_blocks_rejected(self):
        mesh = standard_case()
        with pytest.raises(ValueError):
            mesh.add_block(Block("extra", 8, 2, 10, 4, PACKAGE, 1.0))

    def test_duplicate_block_name_rejected(self):
        mesh = standard_case()
        with pytest.raises(ValueError):
            mesh.add_block(Block("cpu", 40, 0, 44, 2, PACKAGE, 1.0))

    def test_out_of_bounds_block_rejected(self):
        mesh = standard_case()
        with pytest.raises(ValueError):
            mesh.add_block(Block("oob", 46, 14, 50, 18, PACKAGE, 1.0))

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            CaseMesh(2, 2, 0.01, 0.1, 21.6, 0.2, [])


class TestVelocityField:
    def test_zero_in_solids(self):
        mesh = standard_case()
        field = mesh.velocity_field()
        for name in mesh.blocks:
            for x, y in mesh.block_cells(name):
                assert field[y, x] == 0.0

    def test_inlet_column_velocity(self):
        mesh = standard_case()
        field = mesh.velocity_field()
        inlet_velocities = field[:, 0]
        assert np.allclose(
            inlet_velocities[inlet_velocities > 0], mesh.inlet_velocity
        )

    def test_flow_conserved_per_column(self):
        mesh = standard_case()
        field = mesh.velocity_field()
        totals = field.sum(axis=0)
        assert np.allclose(totals, totals[0], rtol=1e-9)

    def test_acceleration_past_obstructions(self):
        mesh = standard_case()
        field = mesh.velocity_field()
        # Column through the disk+psu region has less free area.
        constricted = field[:, 10][field[:, 10] > 0][0]
        assert constricted > mesh.inlet_velocity
