"""The package docstring's quickstart must stay a runnable doctest."""

import doctest

import repro


def test_quickstart_doctest():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 1, "quickstart doctest went missing"
    assert results.failed == 0
