"""Unified policies at datacenter scale, under infrastructure faults.

Two demonstrations the tentpole promises:

* Freon-EC and fault injection run on a 1000-machine
  :class:`ScaleSimulation` — the energy-conservation controller and the
  chaos-style fault schedule both act through the vectorized
  :class:`FlatStateView`, something the old hard-coded
  ``("freon", "none")`` switch made impossible.
* The CI chaos smoke: 200 machines with 5% tempd->admd datagram loss,
  a stuck sensor, and a daemon crash, where Freon still holds every
  zone's hottest CPU below ``T_h`` for the whole run.
"""

from repro.cluster.simulation import chaos_script
from repro.config import table1
from repro.faults import FaultInjector, FaultSchedule
from repro.topology import (
    ScaleSimulation,
    grid_topology,
    inlet_events_from_script,
)


def _chaos_simulation(machines, zones, policy, duration, supply, loss=0.05):
    script = chaos_script(loss=loss)
    injector = FaultInjector(FaultSchedule.from_script(script), seed=2006)
    return ScaleSimulation(
        grid_topology(machines, zones=zones, supply_temperature=supply),
        duration=duration,
        policy=policy,
        injector=injector,
        inlet_events=inlet_events_from_script(script),
    )


class TestThousandMachineFreonEC:
    def test_freon_ec_with_faults_at_1k_machines(self):
        sim = _chaos_simulation(
            machines=1000,
            zones=8,
            policy="freon-ec",
            duration=1200.0,
            supply=23.0,
        )
        sim.run()
        summary = sim.summary()
        assert summary["machines"] == 1000
        assert summary["policy"] == "freon-ec"
        # The fault schedule actually fired through the vectorized view.
        assert summary["faults_logged"] >= 1
        # Energy conservation reconfigured the room: the diurnal valley
        # lets EC retire a large fraction of the fleet.
        assert len(sim.controller.events) > 0
        assert 0 < summary["active_machines"] < 1000


class TestChaosSmoke:
    """The CI ``control-parity`` job's scale-path smoke."""

    def test_freon_holds_th_under_5pct_loss_at_200_machines(self):
        sim = _chaos_simulation(
            machines=200,
            zones=4,
            policy="freon",
            duration=1500.0,
            supply=24.0,
        )
        sim.run()
        summary = sim.summary()
        assert summary["faults_logged"] >= 1
        # Freon actuated (the inlet emergencies redline some machines)..
        assert summary["throttle_events"] > 0
        # ..and held the thermal line: no zone's hottest CPU ever
        # settled above T_h, despite the datagram loss and stuck sensor.
        hottest = max(summary["zone_cpu_max"].values())
        assert hottest <= table1.T_HIGH_CPU, (
            f"hottest zone CPU {hottest:.2f} C breached "
            f"T_h={table1.T_HIGH_CPU} C under chaos"
        )
        assert summary["active_machines"] == 200
