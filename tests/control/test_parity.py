"""Scalar-vs-vectorized policy parity on matched single-zone rooms.

Each case runs the identical room + policy on the flattened NumPy stack
and on the per-machine reference solver (``ScalarScaleSimulation``) and
demands the same decisions and temperatures within 1e-9 Celsius — the
tentpole's proof that :mod:`repro.control.policies` is genuinely
stack-independent.  Room supplies are chosen hot enough that each
policy actually acts, so the parity covers the full observe → decide →
actuate loop.
"""

import pytest

from repro.control.parity import PARITY_TOLERANCE, compare_stacks


def _assert_parity(report, expect_decisions):
    assert report["max_temp_delta"] <= PARITY_TOLERANCE, report
    assert report["max_weight_delta"] <= PARITY_TOLERANCE, report
    assert report["decisions_match"], report
    total = sum(report["decision_counts"].values())
    if expect_decisions:
        assert total > 0, (
            "the room never got hot enough to exercise the policy: "
            f"{report['decision_counts']}"
        )
    return report


class TestPolicyParity:
    def test_freon(self):
        report = compare_stacks(
            policy="freon", machines=10, duration=900.0, supply=55.0
        )
        _assert_parity(report, expect_decisions=True)
        assert report["flat"]["throttle_events"] > 0

    def test_freon_ec(self):
        report = compare_stacks(
            policy="freon-ec", machines=10, duration=900.0, supply=52.0
        )
        _assert_parity(report, expect_decisions=True)
        assert report["decision_counts"]["events"] > 0

    def test_traditional(self):
        report = compare_stacks(
            policy="traditional", machines=8, duration=900.0, supply=62.0
        )
        _assert_parity(report, expect_decisions=True)
        assert report["decision_counts"]["shutdowns"] > 0

    def test_emergency(self):
        report = compare_stacks(
            policy="emergency", machines=8, duration=900.0, supply=58.0
        )
        _assert_parity(report, expect_decisions=True)
        assert report["decision_counts"]["events"] > 0

    def test_none_policy_pure_solve(self):
        report = compare_stacks(
            policy="none", machines=8, duration=300.0, supply=45.0
        )
        _assert_parity(report, expect_decisions=False)


class TestScalarRoom:
    def test_scalar_room_rejects_custom_layout(self):
        from repro.control.parity import ScalarRoomSolver
        from repro.config.layouts import validation_machine
        from repro.topology import grid_topology

        with pytest.raises(Exception, match="layout"):
            ScalarRoomSolver(
                grid_topology(2), layout=validation_machine("template")
            )

    def test_checkpoint_round_trip(self):
        import json

        import numpy as np

        from repro.control.parity import ScalarRoomSolver
        from repro.config import table1
        from repro.topology import grid_topology

        room = ScalarRoomSolver(grid_topology(3))
        room.set_utilization(table1.CPU, [0.2, 0.5, 0.8])
        room.step(20)
        saved = json.loads(json.dumps(room.checkpoint()))
        fresh = ScalarRoomSolver(grid_topology(3))
        fresh.restore(saved)
        fresh.step(10)
        room.step(10)
        assert np.array_equal(
            room.node_column(table1.CPU), fresh.node_column(table1.CPU)
        )
        assert np.array_equal(room.group.util, fresh.group.util)
