"""The scalar backend: unified policies vs the native cluster daemons.

The strongest claim the control-plane refactor can make on the cluster
stack: drive a ``ClusterSimulation(policy="none")`` from the *outside*
with a unified policy acting through :meth:`ClusterSimulation.
state_view`, and the decisions, weights, and temperatures are
bit-identical to the native tempd/admd daemon stack running the same
experiment.  (The native daemons are untouched by the refactor — the
Fig. 11/12 goldens pin that — so agreement here proves the unified
rewrite is a faithful port, not a behavioral fork.)
"""

import numpy as np
import pytest

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1
from repro.control import build
from repro.freon.policy import FreonConfig


def _drive_unified(policy_name, duration, fiddle_script):
    """Run policy="none" with a unified policy over the state view.

    The native daemons sample every ``stats_period`` (5 s) and wake
    every ``monitor_period`` (60 s), both firing in a tick's tail — so
    the external loop calls sample/wake right after the matching tick.
    """
    sim = ClusterSimulation(policy="none", fiddle_script=fiddle_script)
    policy = build(policy_name, "cluster", config=FreonConfig())
    view = sim.state_view()
    config = policy.config
    for _ in range(int(round(duration / sim.dt))):
        sim.step()
        t = sim.time
        if t % config.stats_period == 0.0:
            policy.sample(view, t)
        if t % config.monitor_period == 0.0:
            policy.wake(view, t)
    return sim, policy


def _cpu_temperatures(sim):
    return np.array(
        [sim.solver.temperature(m, table1.CPU) for m in sim.machines]
    )


def _weights(sim):
    servers = sim.balancer.server_map
    return np.array([servers[m].weight for m in sim.machines])


class TestUnifiedFreonMatchesNative:
    DURATION = 1500.0  # emergencies at t=480s; adjustments from ~1020s

    def test_decisions_weights_temperatures_identical(self):
        script = emergency_script()
        native = ClusterSimulation(policy="freon", fiddle_script=script)
        native.run(self.DURATION)
        unified_sim, unified = _drive_unified(
            "freon", self.DURATION, script
        )

        admd = native.admd
        assert len(admd.adjustments) > 0, (
            "the emergency window never tripped Freon; the parity run "
            "exercised nothing"
        )
        assert unified.adjustments == admd.adjustments
        assert unified.releases == admd.releases
        assert unified.redlined == admd.redlined
        assert np.array_equal(_weights(native), _weights(unified_sim))
        assert np.abs(
            _cpu_temperatures(native) - _cpu_temperatures(unified_sim)
        ).max() <= 1e-9


class TestUnifiedFreonECMatchesNative:
    DURATION = 600.0  # EC reconfigures from the first wake at t=60s

    def test_ec_events_and_temperatures_identical(self):
        script = emergency_script()
        native = ClusterSimulation(policy="freon-ec", fiddle_script=script)
        native.run(self.DURATION)
        unified_sim, unified = _drive_unified(
            "freon-ec", self.DURATION, script
        )

        native_events = [
            (e.time, e.action, e.machine, e.reason)
            for e in native.admd.events
        ]
        unified_events = [
            (e.time, e.action, e.machine, e.reason) for e in unified.events
        ]
        assert len(native_events) > 0
        assert unified_events == native_events
        assert np.abs(
            _cpu_temperatures(native) - _cpu_temperatures(unified_sim)
        ).max() <= 1e-9


class TestClusterStateView:
    def test_reads_match_solver_and_balancer(self):
        sim = ClusterSimulation(policy="none")
        sim.run(30)
        view = sim.state_view()
        assert view.machines == tuple(sim.machines)
        temps = view.read_temperatures(["cpu", "disk"])
        for i, name in enumerate(view.machines):
            assert temps["cpu"][i] == pytest.approx(
                sim.solver.temperature(name, table1.CPU), abs=1e-12
            )
        assert np.array_equal(view.weights(), _weights(sim))

    def test_view_is_cached(self):
        sim = ClusterSimulation(policy="none")
        assert sim.state_view() is sim.state_view()

    def test_mask_skips_machines(self):
        sim = ClusterSimulation(policy="none")
        sim.run(5)
        view = sim.state_view()
        mask = np.array([True, False, True, False])
        temps = view.read_temperatures(["cpu"], mask=mask)
        assert not np.isnan(temps["cpu"][0])
        assert np.isnan(temps["cpu"][1])
