"""The policy registry: one namespace validating both stacks."""

import pytest

from repro.cluster.simulation import POLICIES, ClusterSimulation
from repro.control import PolicySpec, STACKS, build, get, names
from repro.control.policies import (
    EmergencyPolicy,
    FreonECPolicy,
    FreonPolicy,
    TraditionalControlPolicy,
)
from repro.errors import ControlError, TopologyError
from repro.topology import ScaleSimulation, grid_topology


class TestNames:
    def test_cluster_names_match_historical_tuple(self):
        # The cluster POLICIES tuple predates the registry; its content
        # and order are pinned (CLI choices, docs, golden artifacts).
        assert names("cluster") == (
            "none", "freon", "freon-ec", "traditional", "local-dvfs"
        )
        assert POLICIES == names("cluster")

    def test_scale_names(self):
        assert names("scale") == (
            "none", "freon", "freon-ec", "traditional", "emergency"
        )

    def test_all_names_superset(self):
        assert set(names()) == set(names("cluster")) | set(names("scale"))

    def test_unknown_stack_rejected(self):
        with pytest.raises(ControlError, match="unknown stack"):
            names("quantum")


class TestGet:
    def test_lookup_returns_spec(self):
        spec = get("freon", stack="scale")
        assert spec.name == "freon"
        assert "scale" in spec.stacks

    def test_unknown_name_lists_available(self):
        with pytest.raises(ControlError) as err:
            get("overclock", stack="scale")
        message = str(err.value)
        for name in names("scale"):
            assert repr(name) in message

    def test_wrong_stack_rejected(self):
        # local-dvfs is cluster-native; emergency is scale-only.
        with pytest.raises(ControlError, match="'scale' stack"):
            get("local-dvfs", stack="scale")
        with pytest.raises(ControlError, match="'cluster' stack"):
            get("emergency", stack="cluster")

    def test_spec_rejects_unknown_stack(self):
        with pytest.raises(ControlError, match="unknown stack"):
            PolicySpec("x", "bad", stacks=("warehouse",))
        assert STACKS == ("cluster", "scale")


class TestBuild:
    def test_builds_policy_instances(self):
        assert isinstance(build("freon", "scale"), FreonPolicy)
        assert isinstance(build("freon-ec", "scale"), FreonECPolicy)
        assert isinstance(
            build("traditional", "scale"), TraditionalControlPolicy
        )
        assert isinstance(build("emergency", "scale"), EmergencyPolicy)

    def test_none_policy_has_no_factory(self):
        assert build("none", "scale") is None
        assert build("none", "cluster") is None


class TestSimulationValidation:
    def test_scale_error_lists_policy_names(self):
        # The satellite fix: the hard-coded ("freon", "none") tuple is
        # gone; an unknown policy reports every registered scale name.
        with pytest.raises(TopologyError) as err:
            ScaleSimulation(grid_topology(4), policy="overclock")
        message = str(err.value)
        assert "unknown policy 'overclock'" in message
        for name in names("scale"):
            assert repr(name) in message

    def test_scale_accepts_every_registered_policy(self):
        topology = grid_topology(4)
        for name in names("scale"):
            sim = ScaleSimulation(topology, policy=name)
            assert sim.policy == name

    def test_cluster_validation_still_registry_backed(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="unknown policy"):
            ClusterSimulation(policy="overclock")
