"""Golden-trace generation shared by the regression tests and regen tool.

Two reference runs pin the solver's numerical behaviour:

``fig5_cpu_calibration``
    A single Table 1 server driven by the Figure 5 CPU-calibration
    shape — utilization steps with idle gaps — through the offline
    solver; every node temperature at every tick.

``fig11_first120s``
    The first 120 s of the Figure 11 Freon experiment (4 servers, the
    diurnal trace, emergencies scripted at t=480 s so none fire inside
    the window); per-machine CPU temperature at every tick.

``fig12_first120s``
    The same window under Freon-EC (policy ``freon-ec``): the full
    daemon stack with the energy-conservation admission controller
    attached.  Pins the scalar trajectory the vectorized EC replay in
    ``tests/control/test_fig12_parity.py`` must reproduce.

Both are generated with the reference ``python`` engine; the tests
re-run them on every engine and demand agreement with the stored JSON
within :data:`TOLERANCE` degrees.  Regenerate (after an intentional
physics change) with ``python -m tests.golden.regen``.
"""

from pathlib import Path

from repro.cluster.simulation import ClusterSimulation, emergency_script
from repro.config import table1
from repro.config.layouts import validation_machine
from repro.core.trace import TracePoint, UtilizationTrace, run_offline

#: Directory the golden JSON files live in.
GOLDEN_DIR = Path(__file__).resolve().parent

#: Maximum per-node absolute temperature disagreement (degrees C).
TOLERANCE = 1e-9

#: Figure 5 CPU-microbenchmark utilization steps, shortened for test
#: runtime (the paper's run uses the same levels over ~14,000 s).
FIG5_LEVELS = (0.25, 0.50, 0.75, 1.00, 0.60, 0.30)
FIG5_BUSY = 60.0
FIG5_IDLE = 40.0
FIG5_DT = 1.0

#: Length of the Figure 11 window.  Emergencies fire at t=480 s and the
#: first Freon adjustments come later still, so this window exercises
#: pure solver dynamics with the policy loop attached but quiescent.
FIG11_SECONDS = 120.0


def fig5_trace(engine: str = "python") -> dict:
    """Run the Figure 5 CPU-calibration shape; all nodes, every tick."""
    points = []
    t = 0.0
    for level in FIG5_LEVELS:
        points.append(
            TracePoint(t, {table1.CPU: level, table1.DISK_PLATTERS: 0.0})
        )
        t += FIG5_BUSY
        points.append(
            TracePoint(t, {table1.CPU: 0.0, table1.DISK_PLATTERS: 0.0})
        )
        t += FIG5_IDLE
    trace = UtilizationTrace("machine1", points)
    layout = validation_machine()
    history = run_offline(
        [layout], [trace], dt=FIG5_DT, duration=t, engine=engine
    )
    samples = history.samples("machine1")
    nodes = sorted(samples[0].temperatures)
    return {
        "name": "fig5_cpu_calibration",
        "engine": engine,
        "dt": FIG5_DT,
        "times": [s.time for s in samples],
        "series": {
            node: [s.temperatures[node] for s in samples] for node in nodes
        },
    }


def fig11_trace(engine: str = "python") -> dict:
    """Run the first 120 s of Figure 11; per-machine CPU temperature."""
    sim = ClusterSimulation(
        policy="freon", fiddle_script=emergency_script(), engine=engine
    )
    result = sim.run(FIG11_SECONDS)
    return {
        "name": "fig11_first120s",
        "engine": engine,
        "dt": sim.dt,
        "times": result.times(),
        "series": {
            m: result.series(m, "cpu_temperature") for m in sim.machines
        },
    }


def fig12_trace(engine: str = "python") -> dict:
    """Run the first 120 s of Figure 12; per-machine CPU temperature."""
    sim = ClusterSimulation(
        policy="freon-ec", fiddle_script=emergency_script(), engine=engine
    )
    result = sim.run(FIG11_SECONDS)
    return {
        "name": "fig12_first120s",
        "engine": engine,
        "dt": sim.dt,
        "times": result.times(),
        "series": {
            m: result.series(m, "cpu_temperature") for m in sim.machines
        },
    }


#: name -> (generator, stored filename)
GOLDEN_TRACES = {
    "fig5_cpu_calibration": (fig5_trace, "fig5_cpu_calibration.json"),
    "fig11_first120s": (fig11_trace, "fig11_first120s.json"),
    "fig12_first120s": (fig12_trace, "fig12_first120s.json"),
}
