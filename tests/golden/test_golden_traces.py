"""Golden-trace regression: both engines must reproduce the stored runs.

The JSON files under ``tests/golden/`` hold full-precision node
temperatures from the reference ``python`` engine (see ``regen.py``).
Each engine re-runs the experiment and must agree with the stored
trace node-for-node, tick-for-tick, within ``TOLERANCE`` (1e-9 C) —
tight enough that any change to the physics, the traversal order, or
the compiled lowering shows up immediately.
"""

import json

import pytest

from repro.core.compiled import have_numpy
from repro.core.solver import ENGINES

from .traces import GOLDEN_DIR, GOLDEN_TRACES, TOLERANCE


def _engines():
    marks = {
        "compiled": pytest.mark.skipif(
            not have_numpy(), reason="compiled engine needs numpy"
        ),
    }
    return [
        pytest.param(e, marks=marks.get(e, ())) for e in ENGINES
    ]


def _load(filename):
    path = GOLDEN_DIR / filename
    if not path.exists():
        pytest.fail(
            f"missing golden trace {path}; regenerate with "
            f"'PYTHONPATH=src python -m tests.golden.regen'"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("engine", _engines())
@pytest.mark.parametrize("name", sorted(GOLDEN_TRACES))
def test_golden_trace(name, engine):
    generate, filename = GOLDEN_TRACES[name]
    stored = _load(filename)
    fresh = generate(engine=engine)

    assert fresh["times"] == stored["times"]
    assert sorted(fresh["series"]) == sorted(stored["series"])
    worst = 0.0
    for node, expected in stored["series"].items():
        actual = fresh["series"][node]
        assert len(actual) == len(expected)
        for tick, (a, e) in enumerate(zip(actual, expected)):
            diff = abs(a - e)
            worst = max(worst, diff)
            assert diff <= TOLERANCE, (
                f"{name}: engine {engine!r} diverges from golden trace at "
                f"node {node!r} tick {tick} (t={stored['times'][tick]}): "
                f"{a!r} vs {e!r} (|diff|={diff:.3e} > {TOLERANCE})"
            )
    # The reference engine regenerating its own trace must be exact.
    if engine == "python":
        assert worst == 0.0
