"""Golden sweep regression: every strategy reproduces the pinned preset.

``tests/golden/thresholds_sweep.json`` pins the merged artifact of the
section 5.1 ``thresholds`` preset (by canonical-JSON digest, with the
per-run summaries in the clear — see ``sweep.py``).  The fork path,
the batched path, and auto must all regenerate those exact bytes; a
digest mismatch with matching summaries means a record- or
telemetry-level change, which is precisely the kind of silent drift
this golden exists to catch.
"""

import json

import pytest

from repro.core.compiled import have_numpy

from .sweep import (
    GOLDEN_SWEEP_FILE,
    digest,
    generate_artifact,
    golden_payload,
)
from .traces import GOLDEN_DIR

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="the pinned grid uses the compiled engine"
)


@pytest.fixture(scope="module")
def stored():
    path = GOLDEN_DIR / GOLDEN_SWEEP_FILE
    if not path.exists():
        pytest.fail(
            f"missing golden sweep artifact {path}; regenerate with "
            f"'PYTHONPATH=src python -m tests.golden.regen'"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("strategy", ("fork", "batch", "auto"))
def test_strategy_reproduces_golden_artifact(strategy, stored):
    artifact = generate_artifact(strategy=strategy)
    payload = golden_payload(artifact)
    # Summaries first: when the digest drifts, this is the readable diff.
    assert payload["runs"] == stored["runs"], (
        f"strategy {strategy!r} changed a run summary vs the golden "
        f"thresholds artifact"
    )
    assert payload["registry_families"] == stored["registry_families"]
    assert payload["grid"] == stored["grid"], (
        "the pinned grid changed; regenerate the golden artifact"
    )
    assert digest(artifact) == stored["sha256"], (
        f"strategy {strategy!r} produced different artifact bytes than "
        f"the golden thresholds sweep (summaries match, so the drift is "
        f"in records or telemetry); if intentional, regenerate with "
        f"'PYTHONPATH=src python -m tests.golden.regen'"
    )
