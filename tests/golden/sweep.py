"""The golden sweep artifact: the pinned ``thresholds`` preset.

The full merged artifact of the section 5.1 threshold sweep is a
couple of megabytes, so the golden file pins its canonical form by
digest instead of by value: the SHA-256 of the sorted-keys JSON (the
exact byte-identity contract the sweep strategies are tested against)
plus the per-run summaries and registry family names in the clear, so
a digest mismatch still leaves something human-readable to diff.

Regenerate with ``PYTHONPATH=src python -m tests.golden.regen`` after
an *intentional* change to the simulation, and eyeball the summary
diff before committing it.
"""

import hashlib
import json
from typing import Dict

from repro.parallel import expand_grid, sweep, threshold_grid

from .traces import GOLDEN_DIR

GOLDEN_SWEEP_FILE = "thresholds_sweep.json"

#: Long enough to cross the t=480 emergencies (so Freon actually works
#: the thresholds being swept), short enough to regenerate in seconds.
DURATION = 600.0


def build_grid() -> Dict[str, object]:
    """The pinned grid: the thresholds preset on the compiled engine."""
    grid = threshold_grid(duration=DURATION)
    grid["base"]["engine"] = "compiled"
    return grid


def generate_artifact(strategy: str) -> Dict[str, object]:
    return sweep(expand_grid(build_grid()), strategy=strategy)


def canonical(artifact: Dict[str, object]) -> str:
    return json.dumps(artifact, sort_keys=True)


def digest(artifact: Dict[str, object]) -> str:
    return hashlib.sha256(canonical(artifact).encode()).hexdigest()


def golden_payload(artifact: Dict[str, object]) -> Dict[str, object]:
    """What the golden file stores: digest + readable excerpts."""
    return {
        "grid": build_grid(),
        "sha256": digest(artifact),
        "runs": [
            {"run_id": run["run_id"], "summary": run["summary"]}
            for run in artifact["runs"]
        ],
        "registry_families": sorted(
            family["name"] for family in artifact["registry"]
        ),
    }


def regenerate() -> None:
    artifact = generate_artifact(strategy="fork")
    payload = golden_payload(artifact)
    path = GOLDEN_DIR / GOLDEN_SWEEP_FILE
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(
        f"wrote {path} ({len(payload['runs'])} runs, "
        f"sha256 {payload['sha256'][:12]}...)"
    )
