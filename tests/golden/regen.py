"""Regenerate the golden solver traces: ``python -m tests.golden.regen``.

Run from the repository root with ``PYTHONPATH=src``.  Only do this
after an *intentional* change to the solver's physics or constants —
the stored JSON is the contract both engines are tested against.  The
files are always generated with the reference ``python`` engine.
"""

import json

from . import sweep
from .traces import GOLDEN_DIR, GOLDEN_TRACES


def regenerate() -> None:
    for name, (generate, filename) in GOLDEN_TRACES.items():
        data = generate(engine="python")
        path = GOLDEN_DIR / filename
        path.write_text(json.dumps(data, indent=1) + "\n")
        ticks = len(data["times"])
        print(f"wrote {path} ({len(data['series'])} series x {ticks} ticks)")
    sweep.regenerate()


if __name__ == "__main__":
    regenerate()
