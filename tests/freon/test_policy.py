"""Tests for Freon policy config and the weight arithmetic."""

import pytest

from repro.config import table1
from repro.errors import ClusterError
from repro.freon.policy import (
    ComponentThresholds,
    FreonConfig,
    weight_for_share_reduction,
)


class TestComponentThresholds:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            ComponentThresholds(high=67.0, low=68.0, red=70.0)
        with pytest.raises(ValueError):
            ComponentThresholds(high=67.0, low=64.0, red=66.0)

    def test_valid(self):
        thresholds = ComponentThresholds(high=67.0, low=64.0, red=69.0)
        assert thresholds.high == 67.0


class TestFreonConfig:
    def test_paper_defaults(self):
        config = FreonConfig()
        assert config.high("cpu") == table1.T_HIGH_CPU == 67.0
        assert config.low("cpu") == table1.T_LOW_CPU == 64.0
        assert config.high("disk") == table1.T_HIGH_DISK == 65.0
        assert config.low("disk") == table1.T_LOW_DISK == 62.0
        assert config.red("cpu") == 69.0
        assert config.kp == 0.1
        assert config.kd == 0.2
        assert config.monitor_period == 60.0
        assert config.stats_period == 5.0


class TestWeightForShareReduction:
    def test_output_zero_is_identity(self):
        weights = {"a": 1.0, "b": 1.0, "c": 1.0}
        assert weight_for_share_reduction(weights, "a", 0.0) == pytest.approx(1.0)

    def test_halving_share_among_four(self):
        weights = {m: 1.0 for m in "abcd"}
        new = weight_for_share_reduction(weights, "a", 1.0)
        weights["a"] = new
        share = new / sum(weights.values())
        assert share == pytest.approx(0.125)

    def test_target_share_general(self):
        weights = {"a": 2.0, "b": 1.0, "c": 1.0}
        output = 3.0  # target share = (2/4)/4 = 0.125
        new = weight_for_share_reduction(weights, "a", output)
        share = new / (new + 2.0)
        assert share == pytest.approx(0.125)

    def test_single_server_unchanged(self):
        assert weight_for_share_reduction({"a": 1.0}, "a", 5.0) == pytest.approx(1.0)

    def test_unknown_server(self):
        with pytest.raises(ClusterError):
            weight_for_share_reduction({"a": 1.0}, "zz", 1.0)

    def test_negative_output(self):
        with pytest.raises(ClusterError):
            weight_for_share_reduction({"a": 1.0, "b": 1.0}, "a", -0.1)

    def test_large_output_shrinks_weight_to_near_zero(self):
        weights = {m: 1.0 for m in "abcd"}
        new = weight_for_share_reduction(weights, "a", 100.0)
        assert 0.0 < new < 0.01

    def test_single_server_even_with_zero_weight(self):
        # A lone server keeps its weight verbatim no matter the output;
        # there is nowhere to shift load.
        assert weight_for_share_reduction({"a": 0.25}, "a", 3.0) == pytest.approx(
            0.25
        )
        assert weight_for_share_reduction({"a": 2.0}, "a", 0.0) == pytest.approx(2.0)

    def test_negative_output_rejected_before_any_arithmetic(self):
        # The guard must fire even for inputs that would also trip later
        # checks (total weight zero), proving it runs first.
        with pytest.raises(ClusterError, match="non-negative"):
            weight_for_share_reduction({"a": 0.0}, "a", -1e-9)

    def test_zero_weight_hot_server_stays_at_zero(self):
        # A hot server already at weight 0 has share 0; any reduction of
        # nothing is nothing, and the arithmetic must not divide by zero.
        weights = {"a": 0.0, "b": 1.0, "c": 1.0}
        assert weight_for_share_reduction(weights, "a", 1.0) == 0.0
        assert weight_for_share_reduction(weights, "a", 0.0) == 0.0

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ClusterError, match="total weight"):
            weight_for_share_reduction({"a": 0.0, "b": 0.0}, "a", 1.0)

    def test_telemetry_records_controller_output(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        weights = {"a": 1.0, "b": 1.0}
        weight_for_share_reduction(weights, "a", 0.75, telemetry=telemetry)
        hist = telemetry.registry.histogram(
            "freon_controller_output", {"machine": "a"},
            buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
        )
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.75)
