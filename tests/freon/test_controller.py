"""Tests for the PD controller and the per-server controller bank."""

import pytest

from repro.freon.controller import ControllerBank, PDController


class TestPDController:
    def test_proportional_only_on_first_update(self):
        controller = PDController(kp=0.1, kd=0.2)
        assert controller.update(70.0, 67.0) == pytest.approx(0.3)

    def test_derivative_on_rising_temperature(self):
        controller = PDController(kp=0.1, kd=0.2)
        controller.update(68.0, 67.0)
        # kp*(70-67) + kd*(70-68)
        assert controller.update(70.0, 67.0) == pytest.approx(0.7)

    def test_falling_temperature_damps_output(self):
        controller = PDController(kp=0.1, kd=0.2)
        controller.update(72.0, 67.0)
        # kp*(68-67) + kd*(68-72) = 0.1 - 0.8 -> clamped at 0.
        assert controller.update(68.0, 67.0) == 0.0

    def test_output_never_negative(self):
        controller = PDController(kp=0.1, kd=0.2)
        controller.update(80.0, 67.0)
        assert controller.update(60.0, 67.0) == 0.0

    def test_observe_feeds_derivative_without_output(self):
        controller = PDController(kp=0.1, kd=0.2)
        controller.observe(66.0)
        # First *update* already has a meaningful last temperature.
        assert controller.update(70.0, 67.0) == pytest.approx(0.3 + 0.2 * 4.0)

    def test_reset_clears_state(self):
        controller = PDController(kp=0.1, kd=0.2)
        controller.update(70.0, 67.0)
        controller.reset()
        assert controller.update(70.0, 67.0) == pytest.approx(0.3)

    def test_paper_gains_are_default(self):
        controller = PDController()
        assert controller.kp == 0.1
        assert controller.kd == 0.2


class TestControllerBank:
    def test_max_across_components(self):
        bank = ControllerBank()
        output = bank.combined_output(
            {"cpu": 70.0, "disk": 66.0},
            {"cpu": 67.0, "disk": 65.0},
        )
        # cpu: 0.1*3 = 0.3; disk: 0.1*1 = 0.1.
        assert output == pytest.approx(0.3)

    def test_cool_components_contribute_zero(self):
        bank = ControllerBank()
        output = bank.combined_output(
            {"cpu": 60.0, "disk": 55.0},
            {"cpu": 67.0, "disk": 65.0},
        )
        assert output == 0.0

    def test_observation_keeps_derivative_fresh(self):
        bank = ControllerBank()
        bank.combined_output({"cpu": 66.0}, {"cpu": 67.0})  # observes only
        output = bank.combined_output({"cpu": 69.0}, {"cpu": 67.0})
        # kp*2 + kd*(69-66)
        assert output == pytest.approx(0.2 + 0.6)

    def test_per_component_state_isolated(self):
        bank = ControllerBank()
        bank.combined_output({"cpu": 70.0, "disk": 50.0}, {"cpu": 67.0, "disk": 65.0})
        output = bank.combined_output(
            {"cpu": 70.0, "disk": 66.0}, {"cpu": 67.0, "disk": 65.0}
        )
        # disk first crossing: kp*1 + kd*(66-50)*... wait: disk last was 50.
        # disk output = 0.1*1 + 0.2*16 = 3.3 > cpu 0.3.
        assert output == pytest.approx(3.3)

    def test_reset_all(self):
        bank = ControllerBank()
        bank.combined_output({"cpu": 70.0}, {"cpu": 67.0})
        bank.reset()
        assert bank.combined_output({"cpu": 70.0}, {"cpu": 67.0}) == pytest.approx(0.3)

    def test_custom_gains_propagate(self):
        bank = ControllerBank(kp=1.0, kd=0.0)
        assert bank.combined_output({"cpu": 70.0}, {"cpu": 67.0}) == pytest.approx(3.0)
