"""Tests for Freon-EC's region bookkeeping."""

import pytest

from repro.errors import ClusterError
from repro.freon.regions import RegionMap, two_region_split


@pytest.fixture
def regions():
    return RegionMap(
        {"m1": "r0", "m3": "r0", "m2": "r1", "m4": "r1"}
    )


class TestRegionMap:
    def test_region_of(self, regions):
        assert regions.region_of("m1") == "r0"
        assert regions.region_of("m2") == "r1"

    def test_unknown_server(self, regions):
        with pytest.raises(ClusterError):
            regions.region_of("m9")

    def test_servers_in(self, regions):
        assert regions.servers_in("r0") == ["m1", "m3"]

    def test_requires_servers(self):
        with pytest.raises(ClusterError):
            RegionMap({})

    def test_emergency_counting(self, regions):
        assert not regions.under_emergency("r0")
        regions.note_emergency("m1")
        regions.note_emergency("m3")
        assert regions.emergency_count("r0") == 2
        regions.clear_emergency("m1")
        assert regions.under_emergency("r0")
        regions.clear_emergency("m3")
        assert not regions.under_emergency("r0")

    def test_clear_never_goes_negative(self, regions):
        regions.clear_emergency("m1")
        assert regions.emergency_count("r0") == 0


class TestPickRegion:
    def test_round_robin_over_candidates(self, regions):
        picks = [regions.pick_region(lambda r: True) for _ in range(4)]
        assert picks == ["r0", "r1", "r0", "r1"]

    def test_skips_regions_without_candidates(self, regions):
        assert regions.pick_region(lambda r: r == "r1") == "r1"
        assert regions.pick_region(lambda r: r == "r1") == "r1"

    def test_prefers_calm_regions(self, regions):
        regions.note_emergency("m1")  # r0 under emergency
        assert regions.pick_region(lambda r: True) == "r1"

    def test_falls_back_to_emergency_region(self, regions):
        regions.note_emergency("m1")
        # Only r0 has a candidate: picked despite the emergency.
        assert regions.pick_region(lambda r: r == "r0") == "r0"

    def test_none_when_no_candidates(self, regions):
        assert regions.pick_region(lambda r: False) is None


class TestTwoRegionSplit:
    def test_paper_grouping(self):
        # "we grouped machines 1 and 3 in region 0 and the others in
        # region 1"
        regions = two_region_split(["machine1", "machine2", "machine3", "machine4"])
        assert regions.region_of("machine1") == regions.region_of("machine3")
        assert regions.region_of("machine2") == regions.region_of("machine4")
        assert regions.region_of("machine1") != regions.region_of("machine2")

    def test_two_regions_total(self):
        regions = two_region_split([f"s{i}" for i in range(6)])
        assert len(regions.regions) == 2
