"""Tests for the CPU-local DVFS thermal governor (section 4.3)."""

import pytest

from repro.errors import ClusterError
from repro.freon.local import DEFAULT_PSTATES, DvfsGovernor


class Harness:
    def __init__(self, temperature=50.0):
        self.temperature = temperature
        self.applied = []

    def read(self):
        return self.temperature

    def apply(self, frequency, power):
        self.applied.append((frequency, power))


def make(temperature=50.0, **kwargs):
    harness = Harness(temperature)
    governor = DvfsGovernor(harness.read, harness.apply, **kwargs)
    return harness, governor


class TestConstruction:
    def test_defaults(self):
        _, governor = make()
        assert governor.frequency_ratio == 1.0
        assert governor.power_ratio == 1.0
        assert not governor.throttled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pstates": []},
            {"pstates": [(1.0, 1.0), (1.0, 0.9)]},    # frequency not falling
            {"pstates": [(1.0, 1.0), (0.8, 1.0)]},    # power not falling
            {"high": 60.0, "low": 65.0},
            {"period": 0.0},
        ],
    )
    def test_invalid_args(self, kwargs):
        harness = Harness()
        with pytest.raises(ClusterError):
            DvfsGovernor(harness.read, harness.apply, **kwargs)


class TestThermostat:
    def test_steps_down_when_hot(self):
        harness, governor = make(temperature=70.0)
        assert governor.decide() is True
        assert governor.index == 1
        assert harness.applied == [DEFAULT_PSTATES[1]]

    def test_one_step_per_decision(self):
        harness, governor = make(temperature=90.0)
        governor.decide()
        governor.decide()
        assert governor.index == 2  # not slammed to the bottom at once

    def test_clamps_at_lowest_pstate(self):
        harness, governor = make(temperature=90.0)
        for _ in range(10):
            governor.decide()
        assert governor.index == len(DEFAULT_PSTATES) - 1

    def test_steps_back_up_when_cool(self):
        harness, governor = make(temperature=70.0)
        governor.decide()
        harness.temperature = 60.0
        assert governor.decide() is True
        assert governor.index == 0
        assert harness.applied[-1] == DEFAULT_PSTATES[0]

    def test_hysteresis_band_is_quiet(self):
        harness, governor = make(temperature=70.0)
        governor.decide()
        harness.temperature = 65.5  # between low (64) and high (67)
        assert governor.decide() is False
        assert governor.index == 1

    def test_never_above_top_pstate(self):
        harness, governor = make(temperature=50.0)
        assert governor.decide() is False
        assert governor.index == 0

    def test_changes_recorded(self):
        harness, governor = make(temperature=70.0)
        governor.decide()
        change = governor.changes[0]
        assert change.index == 1
        assert change.temperature == 70.0
        assert change.frequency_ratio == DEFAULT_PSTATES[1][0]


class TestTickCadence:
    def test_respects_period(self):
        harness, governor = make(temperature=70.0, period=5.0)
        for _ in range(4):
            assert governor.tick(1.0) is False
        assert governor.tick(1.0) is True

    def test_throttled_property(self):
        harness, governor = make(temperature=70.0)
        governor.decide()
        assert governor.throttled
