"""Tests for the traditional red-line-shutdown policy."""

import pytest

from repro.freon.policy import FreonConfig
from repro.freon.traditional import TraditionalPolicy


class Sensors:
    def __init__(self):
        self.temps = {
            "m1": {"cpu": 50.0, "disk": 40.0},
            "m2": {"cpu": 50.0, "disk": 40.0},
        }

    def reader(self, machine):
        return lambda: dict(self.temps[machine])


@pytest.fixture
def harness():
    sensors = Sensors()
    killed = []
    policy = TraditionalPolicy(
        readers={m: sensors.reader(m) for m in sensors.temps},
        turn_off=killed.append,
        config=FreonConfig(),
    )
    return sensors, killed, policy


class TestRedlineShutdown:
    def test_quiet_below_redline(self, harness):
        sensors, killed, policy = harness
        sensors.temps["m1"]["cpu"] = 68.9  # above high, below red (69)
        assert policy.check(60.0) == []
        assert killed == []

    def test_shutdown_at_redline(self, harness):
        sensors, killed, policy = harness
        sensors.temps["m1"]["cpu"] = 69.0
        events = policy.check(60.0)
        assert killed == ["m1"]
        assert events[0].machine == "m1"
        assert events[0].component == "cpu"
        assert events[0].temperature == 69.0

    def test_disk_redline_also_triggers(self, harness):
        sensors, killed, policy = harness
        sensors.temps["m2"]["disk"] = 67.5  # disk red line is 67
        policy.check(60.0)
        assert killed == ["m2"]

    def test_dead_servers_not_rechecked(self, harness):
        sensors, killed, policy = harness
        sensors.temps["m1"]["cpu"] = 70.0
        policy.check(60.0)
        policy.check(120.0)
        assert killed == ["m1"]
        assert len(policy.shutdowns) == 1

    def test_multiple_servers_can_die(self, harness):
        sensors, killed, policy = harness
        sensors.temps["m1"]["cpu"] = 70.0
        sensors.temps["m2"]["cpu"] = 71.0
        policy.check(60.0)
        assert sorted(killed) == ["m1", "m2"]

    def test_off_servers_skipped(self):
        sensors = Sensors()
        sensors.temps["m1"]["cpu"] = 80.0
        killed = []
        policy = TraditionalPolicy(
            readers={m: sensors.reader(m) for m in sensors.temps},
            turn_off=killed.append,
            is_on=lambda name: name != "m1",
        )
        policy.check(60.0)
        assert killed == []

    def test_tick_cadence(self, harness):
        sensors, killed, policy = harness
        sensors.temps["m1"]["cpu"] = 75.0
        for i in range(59):
            assert policy.tick(1.0, float(i)) == []
        assert len(policy.tick(1.0, 60.0)) == 1
