"""Tests for the Freon-EC admission daemon (Figure 10 logic)."""

import pytest

from repro.cluster.lvs import LoadBalancer
from repro.daemons.tempd import MSG_ADJUST, MSG_RELEASE, MSG_STATUS, TempdMessage
from repro.freon.ec import AdmdEC
from repro.freon.regions import two_region_split

MACHINES = ["m1", "m2", "m3", "m4"]


class FakePower:
    """Instant on/off power controller for unit tests."""

    def __init__(self, machines, off=()):
        self._machines = list(machines)
        self._off = set(off)
        self.on_requests = []
        self.off_requests = []

    def off_servers(self):
        return [m for m in self._machines if m in self._off]

    def active_servers(self):
        return [m for m in self._machines if m not in self._off]

    def request_on(self, name):
        self.on_requests.append(name)
        self._off.discard(name)

    def request_off(self, name):
        self.off_requests.append(name)
        self._off.add(name)


def make_ec(off=()):
    balancer = LoadBalancer(MACHINES)
    power = FakePower(MACHINES, off=off)
    ec = AdmdEC(
        balancer,
        regions=two_region_split(MACHINES),
        power=power,
        util_high=0.70,
        util_low=0.60,
    )
    return balancer, power, ec


def status(machine, cpu, disk=0.1, time=60.0):
    return TempdMessage(
        type=MSG_STATUS,
        machine=machine,
        time=time,
        utilizations={"cpu": cpu, "disk": disk},
    )


def adjust(machine, output=0.3, time=60.0):
    return TempdMessage(type=MSG_ADJUST, machine=machine, time=time, output=output)


def feed_status(ec, cpu, machines=MACHINES, time=60.0):
    for machine in machines:
        ec.deliver(status(machine, cpu, time=time))


class TestEnergyConservation:
    def test_shrinks_under_light_load(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.10)
        ec.evaluate(60.0)
        # 0.10 average: removal keeps everything far below 0.60 ->
        # shrink to min_active.
        assert len(power.active_servers()) == 1
        assert all(e.action == "off" for e in ec.events)

    def test_keeps_servers_under_heavy_load(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.65)
        ec.evaluate(60.0)
        assert power.off_requests == []

    def test_partial_shrink(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.40)
        ec.evaluate(60.0)
        # 0.40 * 4/3 = 0.533 < 0.6 (remove one); 0.533 * 3/2 = 0.8 > 0.6.
        assert len(power.active_servers()) == 3

    def test_grows_on_projected_load(self):
        balancer, power, ec = make_ec(off=["m4"])
        feed_status(ec, cpu=0.50, machines=["m1", "m2", "m3"], time=60.0)
        ec.evaluate(60.0)
        feed_status(ec, cpu=0.65, machines=["m1", "m2", "m3"], time=120.0)
        ec.evaluate(120.0)
        # Projection: 0.65 + 2*(0.65-0.50) = 0.95 > 0.70 -> turn on m4.
        assert "m4" in power.on_requests

    def test_no_growth_when_load_flat(self):
        balancer, power, ec = make_ec(off=["m4"])
        feed_status(ec, cpu=0.55, machines=["m1", "m2", "m3"], time=60.0)
        ec.evaluate(60.0)
        feed_status(ec, cpu=0.55, machines=["m1", "m2", "m3"], time=120.0)
        ec.evaluate(120.0)
        assert power.on_requests == []

    def test_never_below_min_active(self):
        balancer, power, ec = make_ec(off=["m2", "m3", "m4"])
        feed_status(ec, cpu=0.01, machines=["m1"])
        ec.evaluate(60.0)
        assert power.active_servers() == ["m1"]

    def test_events_logged_with_reason(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.10)
        ec.evaluate(60.0)
        assert all(e.reason == "energy conservation" for e in ec.events)


class TestEmergencyHandling:
    def test_all_needed_falls_back_to_base_policy(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.72)  # demand 2.88 -> needs 5 > 4 machines...
        ec.deliver(adjust("m1"))
        # Base policy applied: weight reduced, server stays on.
        assert balancer.server("m1").weight < 1.0
        assert power.off_requests == []

    def test_hot_server_replaced_when_spare_exists(self):
        balancer, power, ec = make_ec(off=["m4"])
        feed_status(ec, cpu=0.50, machines=["m1", "m2", "m3"])
        ec.deliver(adjust("m1"))
        # Demand 1.5 -> needs 3 servers == active count -> cannot remove
        # without replacing: m4 turned on, m1 turned off.
        assert "m4" in power.on_requests
        assert "m1" in power.off_requests

    def test_hot_server_retired_without_replacement_when_spare_capacity(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.30)  # demand 1.2 -> needs 2 of 4
        ec.deliver(adjust("m3"))
        assert "m3" in power.off_requests
        assert power.on_requests == []

    def test_replacement_prefers_calm_region(self):
        balancer, power, ec = make_ec(off=["m3", "m4"])
        feed_status(ec, cpu=0.55, machines=["m1", "m2"])
        # m1 (region0) goes hot; m3 is also region0, m4 region1.
        ec.deliver(adjust("m1"))
        assert power.on_requests == ["m4"]

    def test_emergency_counts_cleared_on_release(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.72)
        ec.deliver(adjust("m1"))
        region = ec.regions.region_of("m1")
        assert ec.regions.under_emergency(region)
        ec.deliver(TempdMessage(type=MSG_RELEASE, machine="m1", time=120.0))
        assert not ec.regions.under_emergency(region)
        assert balancer.server("m1").weight == pytest.approx(1.0)

    def test_repeated_adjust_uses_base_policy(self):
        balancer, power, ec = make_ec()
        feed_status(ec, cpu=0.72)
        ec.deliver(adjust("m1", output=0.5, time=60.0))
        first = balancer.server("m1").weight
        ec.deliver(adjust("m1", output=0.5, time=120.0))
        assert balancer.server("m1").weight < first

    def test_removal_victim_is_lowest_capacity(self):
        balancer, power, ec = make_ec()
        balancer.set_weight("m2", 0.2)  # restricted -> lowest capacity
        feed_status(ec, cpu=0.40)
        ec.evaluate(60.0)
        assert power.off_requests[0] == "m2"
