"""Tests for the tempd temperature daemon's policy behaviour."""

import pytest

from repro.daemons.tempd import (
    MSG_ADJUST,
    MSG_REDLINE,
    MSG_RELEASE,
    MSG_STATUS,
    Tempd,
)
from repro.freon.policy import ComponentThresholds, FreonConfig


def make_config(period=60.0):
    return FreonConfig(
        thresholds={
            "cpu": ComponentThresholds(high=67.0, low=64.0, red=69.0),
            "disk": ComponentThresholds(high=65.0, low=62.0, red=67.0),
        },
        monitor_period=period,
    )


class FakeSensor:
    def __init__(self, cpu=50.0, disk=40.0):
        self.cpu = cpu
        self.disk = disk

    def __call__(self):
        return {"cpu": self.cpu, "disk": self.disk}


@pytest.fixture
def harness():
    sensor = FakeSensor()
    messages = []
    daemon = Tempd(
        machine="m1",
        temperature_reader=sensor,
        send=messages.append,
        config=make_config(),
    )
    return sensor, messages, daemon


class TestQuietOperation:
    def test_no_messages_below_thresholds(self, harness):
        sensor, messages, daemon = harness
        daemon.wake(60.0)
        assert messages == []
        assert not daemon.restricted

    def test_no_release_without_prior_restriction(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 50.0  # below low threshold
        daemon.wake(60.0)
        assert messages == []


class TestAdjustPath:
    def test_adjust_sent_above_high(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        assert len(messages) == 1
        msg = messages[0]
        assert msg.type == MSG_ADJUST
        assert msg.machine == "m1"
        # First observation: derivative contributes nothing; kp*(68.5-67).
        assert msg.output == pytest.approx(0.15)

    def test_derivative_term_on_second_wake(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.0
        daemon.wake(60.0)
        sensor.cpu = 68.8
        daemon.wake(120.0)
        # kp*(68.8-67) + kd*(68.8-68.0) = 0.18 + 0.16
        assert messages[1].output == pytest.approx(0.34)

    def test_repeated_while_hot(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        for i in range(3):
            daemon.wake(60.0 * (i + 1))
        assert [m.type for m in messages] == [MSG_ADJUST] * 3

    def test_max_over_components(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.0   # output 0.1
        sensor.disk = 66.0  # output 0.1 over its own 65 threshold
        daemon.wake(60.0)
        assert messages[0].output == pytest.approx(0.1)
        assert sorted(daemon.hot_components) == ["cpu", "disk"]

    def test_between_thresholds_is_silent(self, harness):
        # "For temperatures between T_h and T_l, Freon does not adjust
        # the load distribution as there is no communication".
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        sensor.cpu = 65.5  # between low (64) and high (67)
        daemon.wake(120.0)
        assert [m.type for m in messages] == [MSG_ADJUST]
        assert daemon.restricted


class TestReleasePath:
    def test_release_when_all_below_low(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        sensor.cpu = 63.0
        daemon.wake(120.0)
        assert [m.type for m in messages] == [MSG_ADJUST, MSG_RELEASE]
        assert not daemon.restricted

    def test_release_requires_all_components_cool(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        sensor.cpu = 63.0
        sensor.disk = 63.0  # still above the disk low threshold (62)
        daemon.wake(120.0)
        assert [m.type for m in messages] == [MSG_ADJUST]

    def test_release_sent_once(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        daemon.wake(60.0)
        sensor.cpu = 60.0
        daemon.wake(120.0)
        daemon.wake(180.0)
        assert [m.type for m in messages] == [MSG_ADJUST, MSG_RELEASE]


class TestRedline:
    def test_redline_message(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 69.5
        daemon.wake(60.0)
        types = [m.type for m in messages]
        assert MSG_REDLINE in types
        assert MSG_ADJUST in types  # still above high too

    def test_redline_carries_temperatures(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 70.0
        sensor.disk = 68.0
        daemon.wake(60.0)
        red = [m for m in messages if m.type == MSG_REDLINE][0]
        assert red.temperatures["cpu"] == 70.0
        assert red.temperatures["disk"] == 68.0


class TestStatusMode:
    def test_status_sent_with_utilization_reader(self):
        messages = []
        daemon = Tempd(
            machine="m1",
            temperature_reader=FakeSensor(),
            send=messages.append,
            config=make_config(),
            utilization_reader=lambda: {"cpu": 0.42, "disk": 0.1},
        )
        daemon.wake(60.0)
        assert [m.type for m in messages] == [MSG_STATUS]
        assert messages[0].utilizations == {"cpu": 0.42, "disk": 0.1}


class TestTickCadence:
    def test_tick_respects_period(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        for i in range(59):
            assert daemon.tick(1.0, float(i)) == []
        assert len(daemon.tick(1.0, 60.0)) == 1

    def test_single_large_dt_fires_once(self, harness):
        sensor, messages, daemon = harness
        sensor.cpu = 68.5
        assert len(daemon.tick(60.0, 60.0)) == 1
