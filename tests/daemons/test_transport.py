"""Tests for the tempd -> admd UDP transport."""

import time

import pytest
from hypothesis import given, strategies as st

from repro.cluster.lvs import LoadBalancer
from repro.daemons.admd import Admd
from repro.daemons.tempd import MSG_ADJUST, MSG_STATUS, Tempd, TempdMessage
from repro.daemons.transport import (
    MAX_MESSAGE_BYTES,
    AdmdListener,
    TempdSender,
    decode_message,
    encode_message,
)
from repro.errors import SensorError
from repro.freon.policy import FreonConfig


def sample_message():
    return TempdMessage(
        type=MSG_ADJUST,
        machine="machine1",
        time=120.0,
        output=0.35,
        temperatures={"cpu": 68.5, "disk": 50.0},
        utilizations={"cpu": 0.7},
    )


class TestEncoding:
    def test_round_trip(self):
        message = sample_message()
        decoded = decode_message(encode_message(message))
        assert decoded == message

    def test_rejects_garbage(self):
        with pytest.raises(SensorError):
            decode_message(b"\xff\xfe not json")

    def test_rejects_non_object(self):
        with pytest.raises(SensorError):
            decode_message(b"[1,2,3]")

    def test_rejects_missing_fields(self):
        with pytest.raises(SensorError):
            decode_message(b'{"type": "adjust"}')

    def test_rejects_wrong_types(self):
        bad = (
            b'{"type": "adjust", "machine": "m", "time": "soon", '
            b'"output": 0, "temperatures": {}, "utilizations": {}}'
        )
        with pytest.raises(SensorError):
            decode_message(bad)

    def test_fits_one_datagram(self):
        assert len(encode_message(sample_message())) < MAX_MESSAGE_BYTES

    def test_oversize_message_rejected(self):
        bloated = TempdMessage(
            type=MSG_STATUS,
            machine="machine1",
            time=1.0,
            temperatures={f"sensor{i}": float(i) for i in range(400)},
        )
        with pytest.raises(SensorError, match="too large"):
            encode_message(bloated)

    def test_rejects_non_mapping_temperatures(self):
        bad = (
            b'{"type": "adjust", "machine": "m", "time": 1, '
            b'"output": 0, "temperatures": [1, 2], "utilizations": {}}'
        )
        with pytest.raises(SensorError):
            decode_message(bad)

    @given(
        output=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        temp=st.floats(min_value=-50.0, max_value=150.0, allow_nan=False),
    )
    def test_round_trip_property(self, output, temp):
        message = TempdMessage(
            type=MSG_STATUS,
            machine="m",
            time=1.0,
            output=output,
            temperatures={"cpu": temp},
        )
        decoded = decode_message(encode_message(message))
        assert decoded.output == pytest.approx(output)
        assert decoded.temperatures["cpu"] == pytest.approx(temp)


def _wait_for(predicate, timeout=3.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestUdpPath:
    def test_message_reaches_admd(self):
        balancer = LoadBalancer(["machine1", "machine2"])
        admd = Admd(balancer, config=FreonConfig())
        with AdmdListener(admd.deliver) as listener:
            with TempdSender(listener.address) as send:
                send(sample_message())
                assert _wait_for(lambda: listener.received == 1)
        assert len(admd.adjustments) == 1
        assert balancer.server("machine1").weight < 1.0

    def test_malformed_datagrams_counted_and_ignored(self):
        balancer = LoadBalancer(["machine1"])
        admd = Admd(balancer)
        with AdmdListener(admd.deliver) as listener:
            import socket

            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                sock.sendto(b"not json", listener.address)
                assert _wait_for(lambda: listener.malformed == 1)
                # A good message afterwards still works.
                with TempdSender(listener.address) as send:
                    send(sample_message())
                    assert _wait_for(lambda: listener.received == 1)
            finally:
                sock.close()

    def test_full_daemon_pair_over_udp(self):
        # tempd (with a fake sensor) -> UDP -> admd, end to end.
        balancer = LoadBalancer(["machine1", "machine2"])
        admd = Admd(balancer, config=FreonConfig())
        temps = {"cpu": 68.5, "disk": 40.0}
        with AdmdListener(admd.deliver) as listener:
            with TempdSender(listener.address) as send:
                tempd = Tempd(
                    machine="machine1",
                    temperature_reader=lambda: dict(temps),
                    send=send,
                    config=FreonConfig(),
                )
                tempd.wake(60.0)
                assert _wait_for(lambda: listener.received == 1)
        assert balancer.server("machine1").weight < 1.0

    def test_double_start_rejected(self):
        listener = AdmdListener(lambda m: None)
        listener.start()
        try:
            with pytest.raises(SensorError):
                listener.start()
        finally:
            listener.stop()

    def test_stop_idempotent(self):
        listener = AdmdListener(lambda m: None).start()
        listener.stop()
        listener.stop()


class TestShutdownLifecycle:
    """Pool workers tear transports down on every path; none may leak."""

    def test_start_close_close_under_traffic(self):
        # Close while the worker thread is blocked in its recv loop, then
        # close again: both must return cleanly and release the socket.
        balancer = LoadBalancer(["machine1"])
        admd = Admd(balancer)
        listener = AdmdListener(admd.deliver).start()
        sender = TempdSender(listener.address)
        sender(sample_message())
        assert _wait_for(lambda: listener.received == 1)
        listener.stop()
        listener.stop()
        assert listener._server.socket.fileno() == -1

    def test_stop_without_start_releases_socket(self):
        # __init__ binds the socket; a listener that never served must
        # still release it on stop.
        listener = AdmdListener(lambda m: None)
        listener.stop()
        assert listener._server.socket.fileno() == -1
        listener.stop()  # still idempotent

    def test_start_after_stop_rejected(self):
        listener = AdmdListener(lambda m: None).start()
        listener.stop()
        with pytest.raises(SensorError):
            listener.start()

    def test_stop_closes_socket_even_if_shutdown_raises(self):
        listener = AdmdListener(lambda m: None).start()
        original_shutdown = listener._server.shutdown

        def exploding_shutdown():
            original_shutdown()
            raise OSError("simulated shutdown failure")

        listener._server.shutdown = exploding_shutdown
        with pytest.raises(OSError):
            listener.stop()
        assert listener._server.socket.fileno() == -1
        listener.stop()  # second close after a failed one is a no-op

    def test_sender_double_close_and_send_after_close(self):
        listener = AdmdListener(lambda m: None).start()
        try:
            sender = TempdSender(listener.address)
            sender(sample_message())
            sender.close()
            sender.close()
            with pytest.raises(SensorError):
                sender(sample_message())
        finally:
            listener.stop()

    def test_in_process_delivery_survives_udp_teardown(self):
        # The in-process transport (calling admd.deliver directly) must
        # keep working after the UDP listener for the same admd is gone.
        balancer = LoadBalancer(["machine1", "machine2"])
        admd = Admd(balancer, config=FreonConfig())
        listener = AdmdListener(admd.deliver).start()
        listener.stop()
        listener.stop()
        admd.deliver(sample_message())
        assert len(admd.adjustments) == 1
