"""Tests for the monitord utilization-reporting daemon."""

import pytest

from repro.config import table1
from repro.core.solver import Solver
from repro.daemons.monitord import Monitord
from repro.machine.server import SimulatedServer
from repro.machine.workloads import ConstantWorkload
from repro.sensors.server import SensorService, UdpSensorServer


@pytest.fixture
def stack(layout):
    """A simulated server + solver service pair."""
    solver = Solver([layout], record=False)
    service = SensorService(solver, aliases=table1.sensor_map())
    server = SimulatedServer(
        layout,
        workload=ConstantWorkload({table1.CPU: 0.6, table1.DISK_PLATTERS: 0.3}),
        seed=9,
    )
    return server, service


class TestReporting:
    def test_update_carries_proc_utilizations(self, stack):
        server, service = stack
        daemon = Monitord("machine1", server, service)
        server.step(1.0)
        sent = daemon.send_update()
        assert sent[table1.CPU] == pytest.approx(0.6, abs=0.01)
        assert sent[table1.DISK_PLATTERS] == pytest.approx(0.3, abs=0.01)

    def test_solver_receives_update(self, stack):
        server, service = stack
        daemon = Monitord("machine1", server, service)
        server.step(1.0)
        daemon.send_update()
        state = service.solver.machine("machine1")
        assert state.utilizations[table1.CPU] == pytest.approx(0.6, abs=0.01)

    def test_interval_average_not_instantaneous(self, stack):
        server, service = stack
        daemon = Monitord("machine1", server, service)
        # Half the interval busy, half idle -> ~0.3 average CPU.
        server.step(1.0)
        server.workload = ConstantWorkload({table1.CPU: 0.0})
        server.step(1.0)
        sent = daemon.send_update()
        assert sent[table1.CPU] == pytest.approx(0.3, abs=0.02)

    def test_tick_honours_period(self, stack):
        server, service = stack
        daemon = Monitord("machine1", server, service, period=3.0)
        assert daemon.tick(1.0) is None
        assert daemon.tick(1.0) is None
        server.step(3.0)
        assert daemon.tick(1.0) is not None
        assert daemon.updates_sent == 1

    def test_rejects_bad_period(self, stack):
        server, service = stack
        with pytest.raises(ValueError):
            Monitord("machine1", server, service, period=0.0)


class TestCounterMode:
    def test_requires_counters(self, layout):
        server = SimulatedServer(layout, with_counters=False)
        solver = Solver([layout], record=False)
        service = SensorService(solver)
        with pytest.raises(ValueError):
            Monitord("machine1", server, service, use_counters=True)

    def test_counter_utilization_tracks_nonlinear_power(self, layout):
        # At mid utilization the true power curve is sub-linear, so the
        # counter-derived "low-level utilization" must come in below the
        # plain /proc busy fraction.
        server = SimulatedServer(
            layout,
            workload=ConstantWorkload({table1.CPU: 0.5}),
            with_counters=True,
            seed=3,
        )
        solver = Solver([layout], record=False)
        service = SensorService(solver)
        daemon = Monitord("machine1", server, service, use_counters=True)
        server.run(30.0)
        sent = daemon.send_update()
        assert sent[table1.CPU] < 0.5
        assert sent[table1.CPU] == pytest.approx(0.46, abs=0.04)

    def test_counter_utilization_matches_at_extremes(self, layout):
        for level, expected in ((0.0, 0.0), (1.0, 1.0)):
            server = SimulatedServer(
                layout,
                workload=ConstantWorkload({table1.CPU: level}),
                with_counters=True,
                seed=5,
            )
            solver = Solver([layout], record=False)
            daemon = Monitord(
                "machine1", server, SensorService(solver), use_counters=True
            )
            server.run(30.0)
            sent = daemon.send_update()
            assert sent[table1.CPU] == pytest.approx(expected, abs=0.06)


class TestUdpTransport:
    def test_update_over_udp(self, stack):
        server, service = stack
        with UdpSensorServer(service) as udp:
            with Monitord("machine1", server, udp.address) as daemon:
                server.step(1.0)
                daemon.send_update()
                import time

                for _ in range(100):
                    state = service.solver.machine("machine1")
                    if state.utilizations[table1.CPU] > 0.0:
                        break
                    time.sleep(0.01)
        assert service.solver.machine("machine1").utilizations[
            table1.CPU
        ] == pytest.approx(0.6, abs=0.01)
