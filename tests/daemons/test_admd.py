"""Tests for the admd admission-control daemon."""

import pytest

from repro.cluster.lvs import LoadBalancer
from repro.daemons.admd import Admd
from repro.daemons.tempd import (
    MSG_ADJUST,
    MSG_REDLINE,
    MSG_RELEASE,
    TempdMessage,
)
from repro.freon.policy import FreonConfig


@pytest.fixture
def balancer():
    return LoadBalancer(["m1", "m2", "m3", "m4"])


@pytest.fixture
def admd(balancer):
    return Admd(balancer, config=FreonConfig())


def adjust(machine, output, time=60.0):
    return TempdMessage(type=MSG_ADJUST, machine=machine, time=time, output=output)


class TestAdjust:
    def test_weight_reduced_for_target_share(self, balancer, admd):
        # output=1 -> target share = (1/4)/2 = 1/8; with W_rest=3 the new
        # weight is (1/8*3)/(7/8) = 3/7.
        admd.deliver(adjust("m1", 1.0))
        assert balancer.server("m1").weight == pytest.approx(3.0 / 7.0)

    def test_resulting_share_is_half_for_output_one(self, balancer, admd):
        admd.deliver(adjust("m1", 1.0))
        weights = {s.name: s.weight for s in balancer.active_servers()}
        share = weights["m1"] / sum(weights.values())
        assert share == pytest.approx(0.125)

    def test_zero_output_keeps_weight(self, balancer, admd):
        admd.deliver(adjust("m1", 0.0))
        assert balancer.server("m1").weight == pytest.approx(1.0)

    def test_connection_cap_set_from_average(self, balancer, admd):
        balancer.server("m1").active_connections = 10.0
        admd.sample(55.0)
        balancer.server("m1").active_connections = 20.0
        admd.sample(60.0)
        admd.deliver(adjust("m1", 0.5))
        assert balancer.server("m1").connection_limit == pytest.approx(15.0)

    def test_cap_falls_back_to_current_connections(self, balancer, admd):
        balancer.server("m1").active_connections = 7.0
        admd.deliver(adjust("m1", 0.5))
        assert balancer.server("m1").connection_limit == pytest.approx(7.0)

    def test_adjustment_recorded(self, admd):
        admd.deliver(adjust("m1", 0.4, time=120.0))
        assert admd.adjustments == [(120.0, "m1", 0.4)]

    def test_adjust_on_inactive_server_ignored(self, balancer, admd):
        balancer.quiesce("m1")
        admd.deliver(adjust("m1", 1.0))
        assert balancer.server("m1").weight == pytest.approx(1.0)

    def test_consecutive_adjustments_compound(self, balancer, admd):
        admd.deliver(adjust("m1", 1.0))
        first = balancer.server("m1").weight
        admd.deliver(adjust("m1", 1.0))
        assert balancer.server("m1").weight < first


class TestRelease:
    def test_release_restores_defaults(self, balancer, admd):
        admd.deliver(adjust("m1", 2.0))
        admd.deliver(
            TempdMessage(type=MSG_RELEASE, machine="m1", time=300.0)
        )
        server = balancer.server("m1")
        assert server.weight == pytest.approx(1.0)
        assert server.connection_limit is None
        assert admd.releases == [(300.0, "m1")]


class TestRedline:
    def test_redline_invokes_turn_off(self, balancer):
        killed = []
        admd = Admd(balancer, turn_off=killed.append)
        admd.deliver(TempdMessage(type=MSG_REDLINE, machine="m2", time=60.0))
        assert killed == ["m2"]
        assert admd.redlined == [(60.0, "m2")]

    def test_redline_without_hook_is_recorded_only(self, admd):
        admd.deliver(TempdMessage(type=MSG_REDLINE, machine="m2", time=60.0))
        assert admd.redlined == [(60.0, "m2")]


class TestStatsSampling:
    def test_tick_samples_every_stats_period(self, balancer, admd):
        balancer.server("m1").active_connections = 4.0
        for i in range(5):
            admd.tick(1.0, float(i))
        assert admd.average_connections("m1") == pytest.approx(4.0)

    def test_window_limited_to_monitor_period(self, balancer, admd):
        # Old samples beyond the monitor period fall out of the average.
        balancer.server("m1").active_connections = 100.0
        admd.sample(0.0)
        balancer.server("m1").active_connections = 10.0
        for t in range(5, 70, 5):
            admd.sample(float(t))
        assert admd.average_connections("m1") == pytest.approx(10.0)
