"""Tests for RunSpec validation, grid expansion, and seed derivation."""

import json

import pytest

from repro.config import table1
from repro.errors import SweepError
from repro.faults import derive_seed
from repro.parallel import (
    RunResult,
    RunSpec,
    expand_grid,
    fig11_grid,
    threshold_grid,
)
from repro.cluster.simulation import POLICIES


class TestRunSpec:
    def test_defaults_are_the_fig11_run(self):
        spec = RunSpec(run_id="r")
        assert spec.policy == "freon"
        assert spec.scenario == "emergency"
        assert spec.duration == 2000.0
        assert spec.machine_names() == list(table1.CLUSTER_MACHINES)

    def test_round_trip_through_json(self):
        spec = RunSpec(
            run_id="policy=freon,seed=3", policy="freon", scenario="chaos",
            duration=500.0, seed=3, loss=0.1, cluster_size=6,
            cpu_high=66.0, checkpoint_every=120.0,
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert RunSpec.from_dict(data) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SweepError, match="unknown RunSpec field"):
            RunSpec.from_dict({"run_id": "r", "policyy": "freon"})

    def test_validation(self):
        with pytest.raises(SweepError, match="run_id"):
            RunSpec(run_id="")
        with pytest.raises(SweepError, match="policy"):
            RunSpec(run_id="r", policy="nope")
        with pytest.raises(SweepError, match="engine"):
            RunSpec(run_id="r", engine="rust")
        with pytest.raises(SweepError, match="scenario"):
            RunSpec(run_id="r", scenario="mayhem")
        with pytest.raises(SweepError, match="duration"):
            RunSpec(run_id="r", duration=0.0)
        with pytest.raises(SweepError, match="cluster_size"):
            RunSpec(run_id="r", cluster_size=-1)

    def test_cpu_low_defaults_to_table1_spread(self):
        spec = RunSpec(run_id="r", cpu_high=66.0)
        assert spec.cpu_low == 63.0

    def test_cpu_threshold_validation(self):
        with pytest.raises(SweepError, match="cpu_low requires"):
            RunSpec(run_id="r", cpu_low=60.0)
        with pytest.raises(SweepError, match="low < high"):
            RunSpec(run_id="r", cpu_high=64.0, cpu_low=64.0)

    def test_cluster_size_names(self):
        spec = RunSpec(run_id="r", cluster_size=6)
        assert spec.machine_names() == [f"machine{i}" for i in range(1, 7)]


class TestRunResult:
    def test_round_trip(self):
        result = RunResult(
            run_id="r", spec={"run_id": "r"}, summary={"drop_fraction": 0.0},
            records=[], registry=[], resumed=True,
        )
        assert RunResult.from_dict(result.to_dict()) == result

    def test_rejects_unknown_fields(self):
        with pytest.raises(SweepError, match="unknown RunResult field"):
            RunResult.from_dict({"run_id": "r", "oops": 1})


class TestExpandGrid:
    def test_axes_expand_in_sorted_name_order(self):
        specs = expand_grid({
            "base": {"duration": 100.0},
            "axes": {"seed": [0, 1], "policy": ["none", "freon"]},
        })
        # 'policy' sorts before 'seed': policy is the outer loop.
        assert [s.run_id for s in specs] == [
            "policy=none,seed=0",
            "policy=none,seed=1",
            "policy=freon,seed=0",
            "policy=freon,seed=1",
        ]
        assert all(s.duration == 100.0 for s in specs)

    def test_no_axes_yields_single_run(self):
        specs = expand_grid({"base": {"policy": "traditional"}})
        assert [s.run_id for s in specs] == ["single"]
        assert specs[0].policy == "traditional"

    def test_axis_overrides_base(self):
        specs = expand_grid({
            "base": {"policy": "none"},
            "axes": {"policy": ["freon"]},
        })
        assert specs[0].policy == "freon"

    def test_float_axis_values_format_compactly(self):
        specs = expand_grid({"axes": {"cpu_high": [65.0, 67.5]}})
        assert [s.run_id for s in specs] == ["cpu_high=65", "cpu_high=67.5"]

    def test_unknown_keys_rejected(self):
        with pytest.raises(SweepError, match="unknown grid key"):
            expand_grid({"bases": {}})
        with pytest.raises(SweepError, match="unknown RunSpec field.*base"):
            expand_grid({"base": {"policyy": "freon"}})
        with pytest.raises(SweepError, match="unknown RunSpec field.*axes"):
            expand_grid({"axes": {"policyy": ["freon"]}})

    def test_run_id_cannot_be_set(self):
        with pytest.raises(SweepError, match="run_id is derived"):
            expand_grid({"base": {"run_id": "r"}})

    def test_empty_or_scalar_axis_rejected(self):
        with pytest.raises(SweepError, match="non-empty list"):
            expand_grid({"axes": {"seed": []}})
        with pytest.raises(SweepError, match="non-empty list"):
            expand_grid({"axes": {"seed": 3}})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(SweepError, match="duplicate run_id"):
            expand_grid({"axes": {"seed": [1, 1]}})

    def test_expansion_is_insertion_order_independent(self):
        a = expand_grid({"axes": {"seed": [0, 1], "policy": ["freon"]}})
        b = expand_grid({"axes": {"policy": ["freon"], "seed": [0, 1]}})
        assert a == b


class TestPresets:
    def test_fig11_covers_every_policy(self):
        specs = expand_grid(fig11_grid())
        assert sorted(s.policy for s in specs) == sorted(POLICIES)
        assert all(s.scenario == "emergency" for s in specs)
        assert all(s.duration == 2000.0 for s in specs)

    def test_fig11_seed_axis_scales_the_grid(self):
        specs = expand_grid(fig11_grid(seeds=3, policies=("freon", "none")))
        assert len(specs) == 6
        assert {s.seed for s in specs} == {0, 1, 2}

    def test_threshold_grid_keeps_the_spread(self):
        specs = expand_grid(threshold_grid(highs=(65.0, 69.0)))
        assert [(s.cpu_high, s.cpu_low) for s in specs] == [
            (65.0, 62.0), (69.0, 66.0),
        ]
        assert all(s.policy == "freon" for s in specs)


class TestDeriveSeed:
    def test_deterministic_across_processes(self):
        # Hash-based, so these exact values hold on every platform and
        # Python version; a change here breaks sweep reproducibility.
        assert derive_seed(0, "x") == 2034735851077056357
        assert derive_seed(7, "policy=freon", 3) == 3920513591882389778

    def test_components_matter(self):
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")
        assert derive_seed(0, "a", 0) != derive_seed(0, "a", 1)

    def test_63_bit_range(self):
        for base in range(20):
            seed = derive_seed(base, "run")
            assert 0 <= seed < 2 ** 63


class TestScenarioGrid:
    def test_covers_every_scenario_crossed_with_cloning(self):
        from repro.cluster.scenarios import scenario_names
        from repro.parallel import expand_grid, scenario_grid

        specs = expand_grid(scenario_grid(duration=300.0))
        names = {s.scenario for s in specs}
        assert names == set(scenario_names())
        assert len(specs) == len(names) * 2  # cloning off/on
        assert {s.cloning for s in specs} == {0, 2}

    def test_chaos_variants_optional(self):
        from repro.parallel import expand_grid, scenario_grid

        specs = expand_grid(scenario_grid(include_chaos=False))
        assert all(not s.scenario.endswith("-chaos") for s in specs)

    def test_cloning_field_omitted_from_wire_form_when_zero(self):
        from repro.parallel import RunSpec

        classic = RunSpec(run_id="r", cloning=0)
        assert "cloning" not in classic.to_dict()
        cloned = RunSpec(run_id="r", cloning=2)
        assert cloned.to_dict()["cloning"] == 2
        assert RunSpec.from_dict(cloned.to_dict()).cloning == 2

    def test_negative_cloning_rejected(self):
        from repro.errors import SweepError
        from repro.parallel import RunSpec

        with pytest.raises(SweepError, match="cloning"):
            RunSpec(run_id="r", cloning=-1)

    def test_workload_scenario_accepted_as_spec_scenario(self):
        from repro.parallel import RunSpec

        spec = RunSpec(run_id="r", scenario="flash-crowd-chaos")
        assert spec.scenario == "flash-crowd-chaos"
