"""Tests for the sweep engine: fan-out, determinism, crash recovery."""

import json

import pytest

from repro.errors import SweepError
from repro.parallel import (
    RunSpec,
    WorkerCrash,
    artifact_registry,
    execute_spec,
    expand_grid,
    merge_results,
    sweep,
    write_artifact,
)
from repro.parallel.engine import HOST_METRICS, _worker

#: A small but real grid: two policies under the emergencies, long
#: enough to cross the t=480 inlet emergency and reach Freon's first
#: weight adjustment (t=1020).
GRID = {
    "base": {"scenario": "emergency", "duration": 1100.0},
    "axes": {"policy": ["none", "freon"]},
}


@pytest.fixture(scope="module")
def serial_artifact():
    return sweep(expand_grid(GRID), workers=1)


class TestSweep:
    def test_two_workers_match_serial_byte_for_byte(self, serial_artifact):
        parallel = sweep(expand_grid(GRID), workers=2)
        assert (
            json.dumps(parallel, sort_keys=True)
            == json.dumps(serial_artifact, sort_keys=True)
        )

    def test_runs_are_sorted_by_run_id(self, serial_artifact):
        ids = [r["run_id"] for r in serial_artifact["runs"]]
        assert ids == sorted(ids)

    def test_summary_shape(self, serial_artifact):
        by_id = {r["run_id"]: r for r in serial_artifact["runs"]}
        freon = by_id["policy=freon"]["summary"]
        none = by_id["policy=none"]["summary"]
        assert freon["total_offered"] == none["total_offered"]
        # Freon reacts to the emergency; the no-policy run does not.
        assert freon["adjustments"] > 0
        assert none["adjustments"] == 0
        assert set(freon["peak_cpu"]) == {
            "machine1", "machine2", "machine3", "machine4"
        }

    def test_host_metrics_are_excluded(self, serial_artifact):
        names = {f["name"] for f in serial_artifact["registry"]}
        assert not names & HOST_METRICS
        # ...but simulation metrics made it through, run-namespaced.
        assert "cluster_requests_offered_total" in names

    def test_registry_children_namespaced_by_run(self, serial_artifact):
        registry = artifact_registry(serial_artifact)
        offered = registry.value(
            "cluster_requests_offered_total", {"run": "policy=freon"}
        )
        summary = serial_artifact["runs"][0]["summary"]
        assert offered == pytest.approx(summary["total_offered"])

    def test_empty_sweep_rejected(self):
        with pytest.raises(SweepError, match="nothing to sweep"):
            sweep([], workers=2)

    def test_duplicate_run_ids_rejected(self):
        spec = RunSpec(run_id="r", duration=10.0)
        with pytest.raises(SweepError, match="duplicate"):
            sweep([spec, spec], workers=1)

    def test_write_artifact_round_trips(self, serial_artifact, tmp_path):
        json_path, prom_path = write_artifact(
            serial_artifact, tmp_path / "sweep.json"
        )
        loaded = json.loads(json_path.read_text())
        assert loaded == json.loads(json.dumps(serial_artifact))
        assert 'run="policy=freon"' in prom_path.read_text()
        # Equal artifacts serialize byte-identically.
        again, _ = write_artifact(serial_artifact, tmp_path / "again.json")
        assert again.read_bytes() == json_path.read_bytes()


class TestCrashRecovery:
    CLEAN = dict(
        policy="freon", scenario="chaos", duration=400.0, seed=5,
        checkpoint_every=60.0,
    )

    def test_crash_hook_raises_with_last_checkpoint(self):
        spec = RunSpec(run_id="r", crash_at=250.0, **self.CLEAN)
        with pytest.raises(WorkerCrash) as err:
            execute_spec(spec)
        assert err.value.checkpoint is not None
        assert err.value.checkpoint["time"] == 240.0

    def test_worker_reports_crash_as_data(self):
        spec = RunSpec(run_id="r", crash_at=100.0, **self.CLEAN)
        outcome = _worker(spec.to_dict())
        assert outcome["run_id"] == "r"
        assert "crash" in outcome["error"]
        assert outcome["checkpoint"]["time"] == 60.0

    def test_sweep_resumes_crashed_run_from_checkpoint(self):
        crashy = RunSpec(run_id="r", crash_at=250.0, **self.CLEAN)
        artifact = sweep([crashy], workers=1)
        run = artifact["runs"][0]
        assert run["resumed"] is True

        golden = execute_spec(RunSpec(run_id="r", **self.CLEAN))
        assert run["records"] == golden.to_dict()["records"]
        assert run["summary"] == golden.to_dict()["summary"]

    def test_crash_before_first_checkpoint_restarts_from_scratch(self):
        params = dict(self.CLEAN, checkpoint_every=300.0)
        crashy = RunSpec(run_id="r", crash_at=100.0, **params)
        artifact = sweep([crashy], workers=1)
        run = artifact["runs"][0]
        assert run["resumed"] is False

        golden = execute_spec(RunSpec(run_id="r", **params))
        assert run["records"] == golden.to_dict()["records"]
        assert run["registry"] == golden.to_dict()["registry"]


class TestMergeResults:
    def test_merge_is_order_independent(self):
        specs = expand_grid({
            "base": {"duration": 60.0, "scenario": "none"},
            "axes": {"policy": ["none", "freon", "traditional"]},
        })
        results = [execute_spec(s) for s in specs]
        forward = merge_results(results)
        backward = merge_results(list(reversed(results)))
        assert (
            json.dumps(forward, sort_keys=True)
            == json.dumps(backward, sort_keys=True)
        )
