"""Property-test harness: the batched sweep path is bit-equivalent.

The batched engine (``repro.parallel.batch``) promises that stacking a
grid of runs as rows on one vectorized solver changes *nothing* about
any individual run — not a single bit of any record, summary, or
telemetry family.  Hypothesis is not installed in this environment, so
this is a seeded-``random.Random`` harness in the same spirit: each
case derives a randomized grid (policy, scenario, thresholds, cluster
size, fault seed, loss rate, checkpoint cadence) from its case seed,
runs it through both the batched lockstep runner and the sequential
per-run path, and asserts the results are byte-identical run by run.

A failing case prints its case seed and run_id; re-running the one
parametrized case reproduces the exact grid (the no-shrinking
trade-off of a hand-rolled harness).  Grids deliberately include
members the pool must refuse (``engine="python"``) so the mixed
pooled/inline lockstep path is exercised, not just the all-pooled
fast path.
"""

import json
import random

import pytest

from repro.core.compiled import have_numpy
from repro.parallel import RunSpec, execute_spec, sweep
from repro.parallel.batch import run_batch

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="the batched engine needs numpy"
)

#: Independent randomized grids; each is one parametrized test case.
CASE_SEEDS = tuple(range(6))

#: Every policy the simulation knows, including the ones the original
#: sweep presets never touch (local-dvfs drives per-machine throttling,
#: a different fiddle/actuation path than the balancer policies).
POLICY_CHOICES = ("none", "traditional", "freon", "freon-ec", "local-dvfs")

#: The section 5 emergencies fire at t=480; runs that should see a
#: fiddle storm must cross that line, quiet runs can stay short.
STORM_DURATIONS = (500.0, 520.0)
QUIET_DURATIONS = (90.0, 140.0)


def _random_spec(rng: random.Random, run_id: str) -> RunSpec:
    """One randomized run; scenario picks the duration band."""
    scenario = rng.choice(("emergency", "chaos", "none"))
    params = {
        "run_id": run_id,
        "policy": rng.choice(POLICY_CHOICES),
        "engine": "compiled",
        "scenario": scenario,
        "duration": rng.choice(
            QUIET_DURATIONS if scenario == "none" else STORM_DURATIONS
        ),
        "seed": rng.randrange(1000),
    }
    if scenario == "chaos":
        params["loss"] = rng.choice((0.0, 0.05, 0.2))
    if rng.random() < 0.5:
        # Section 5.1 threshold sweep territory; cpu_low follows at the
        # Table 1 spread unless the case pins it explicitly.
        params["cpu_high"] = rng.choice((63.0, 65.0, 67.0, 69.0))
        if rng.random() < 0.3:
            params["cpu_low"] = params["cpu_high"] - rng.choice((2.0, 4.0))
    if rng.random() < 0.3:
        # The emergency/chaos scripts fiddle machine1..machine3, so a
        # non-default cluster must keep at least those machines.
        params["cluster_size"] = 5 if scenario != "none" else rng.choice((2, 5))
    if rng.random() < 0.3:
        params["checkpoint_every"] = rng.choice((30.0, 60.0))
    if rng.random() < 0.25:
        # A member the pool must refuse: it runs inline in the same
        # lockstep loop while its neighbors stay pooled.
        params["engine"] = "python"
    return RunSpec(**params)


def _random_specs(rng: random.Random, tag: str) -> list:
    return [
        _random_spec(rng, f"{tag}-run{i}")
        for i in range(rng.randint(2, 4))
    ]


def _dumps(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.mark.parametrize("case_seed", CASE_SEEDS)
def test_random_grid_batched_equals_sequential(case_seed):
    rng = random.Random(0xBA7C4 + case_seed)
    specs = _random_specs(rng, f"case{case_seed}")
    batched = run_batch(specs)
    assert [r.run_id for r in batched] == [s.run_id for s in specs]
    for spec, got in zip(specs, batched):
        want = execute_spec(spec)
        assert _dumps(got) == _dumps(want), (
            f"case_seed={case_seed} run_id={spec.run_id!r}: batched "
            f"result diverged from the sequential path (spec: "
            f"{spec.to_dict()})"
        )


def test_single_run_grid_batched_equals_sequential():
    """The degenerate 1-run batch takes the pooled path, not a bypass."""
    spec = RunSpec(
        run_id="solo", policy="freon", engine="compiled",
        scenario="emergency", duration=520.0,
    )
    (got,) = run_batch([spec])
    assert _dumps(got) == _dumps(execute_spec(spec))


def test_sweep_strategies_merge_to_identical_artifacts():
    """Whole-artifact identity on a grid with a refused member.

    ``strategy="batch"`` routes statically-evictable specs through the
    fork path and pools the rest; the merged artifact must still be
    byte-identical to the all-fork artifact (and to whatever ``auto``
    picks).
    """
    rng = random.Random(0x5EEDED)
    specs = _random_specs(rng, "strategies")
    specs.append(RunSpec(
        run_id="strategies-python", policy="freon", engine="python",
        scenario="none", duration=90.0,
    ))
    reference = json.dumps(sweep(specs, strategy="fork"), sort_keys=True)
    for strategy in ("batch", "auto"):
        artifact = json.dumps(sweep(specs, strategy=strategy), sort_keys=True)
        assert artifact == reference, (
            f"sweep artifact via strategy={strategy!r} differs from fork"
        )
