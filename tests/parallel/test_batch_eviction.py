"""Batch-eviction edges: every way a run can fall out of the pool.

The pool's contract is that eviction is invisible in the results: a
refused or evicted member finishes on a private engine and its result
is byte-identical to the sequential path.  These tests exercise each
eviction route individually — static partition, adoption refusal
(opaque power model, engine, dt), the mid-run structural-edit listener
path — plus the error edges (pending-tick eviction, retiring strangers,
crash hooks in the lockstep runner) and mixed layout-signature grids.
"""

import json
from dataclasses import replace

import pytest

from repro.core.compiled import CompiledEngine, have_numpy
from repro.core.power import PowerModel, TablePowerModel
from repro.errors import SweepError
from repro.parallel import RunSpec, execute_spec
from repro.parallel.batch import (
    EVICT_CRASH_HOOK,
    EVICT_ENGINE,
    EVICT_STRUCTURAL,
    BatchMember,
    BatchPool,
    BatchRunner,
    partition_specs,
    run_batch,
)
from repro.parallel.engine import build_simulation, collect_result

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="the batched engine needs numpy"
)


def _spec(run_id: str, **overrides) -> RunSpec:
    params = {
        "run_id": run_id, "policy": "freon", "engine": "compiled",
        "scenario": "none", "duration": 120.0,
    }
    params.update(overrides)
    return RunSpec(**params)


def _dumps(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class _DelegatingPower(PowerModel):
    """A custom model the plan compiler cannot see through ("opaque")."""

    def __init__(self, inner: PowerModel) -> None:
        self._inner = inner

    def power(self, utilization: float) -> float:
        return self._inner.power(utilization)

    @property
    def idle_power(self) -> float:
        return self._inner.idle_power

    @property
    def max_power(self) -> float:
        return self._inner.max_power


def _swap_cpu_model(simulation, machine: str, model_factory) -> None:
    """Replace one machine's CPU power model in its layout description.

    Layouts are per-simulation objects (``validation_cluster`` builds
    fresh ones), so this only changes what a *fresh* plan compilation
    of this simulation sees.
    """
    state = simulation.solver.machines[machine]
    component = state.layout.components["CPU"]
    state.layout.components["CPU"] = replace(
        component, power_model=model_factory(component.power_model)
    )


class TestStaticPartition:
    def test_python_engine_and_crash_hooks_are_routed_to_fork(self):
        compiled = _spec("a")
        scalar = _spec("b", engine="python")
        crashy = _spec("c", crash_at=50.0, checkpoint_every=20.0)
        eligible, evicted = partition_specs([compiled, scalar, crashy])
        assert eligible == [compiled]
        assert evicted == [(scalar, EVICT_ENGINE), (crashy, EVICT_CRASH_HOOK)]


class TestAdoptRefusal:
    def test_opaque_power_model_is_refused_and_runs_inline(self):
        spec = _spec("opaque")
        simulation = build_simulation(spec)
        _swap_cpu_model(simulation, "machine1", _DelegatingPower)
        pool = BatchPool(simulation.dt)
        assert pool.adopt(simulation) is False
        assert len(pool) == 0
        # The refusal leaves the simulation on its construction-time
        # engine, so running it inline matches the sequential path
        # (which never saw the opaque swap either — the swap only
        # affects fresh plan compilations, not the engine built before
        # it).
        runner = BatchRunner([BatchMember(spec, simulation)])
        assert runner.members[0].pooled is False
        runner.run()
        got = collect_result(spec, simulation)
        assert _dumps(got) == _dumps(execute_spec(spec))

    def test_python_engine_is_refused(self):
        simulation = build_simulation(_spec("py", engine="python"))
        pool = BatchPool(simulation.dt)
        assert pool.adopt(simulation) is False

    def test_dt_mismatch_is_refused(self):
        simulation = build_simulation(_spec("dt"))
        pool = BatchPool(simulation.dt * 2.0)
        assert pool.adopt(simulation) is False
        assert len(pool) == 0


class TestStructuralEviction:
    def test_mid_run_structural_edit_evicts_and_stays_bit_exact(self):
        """A mutation the shared plan cannot express evicts its member.

        The injected heat edge joins two nodes the layout does not
        have, with k=0 — physically inert, but structurally outside
        the compiled plan, exactly like a fiddle edit that grows the
        graph.  The evicted member must finish on its private engine
        with results byte-identical to the sequential path, and its
        neighbor must stay pooled and unperturbed.
        """
        specs = [_spec("victim", duration=200.0),
                 _spec("bystander", duration=200.0)]
        members = [BatchMember(s, build_simulation(s)) for s in specs]
        runner = BatchRunner(members)
        assert all(m.pooled for m in members)

        runner.run_ticks(50)
        victim = members[0].simulation
        state = victim.solver.machines["machine1"]
        state.k[("alpha", "beta")] = 0.0
        state.set_k("alpha", "beta", 0.0)

        assert [(s, r) for s, r in runner.pool.evictions] == [
            (victim, EVICT_STRUCTURAL)
        ]
        assert len(runner.pool) == 1  # the bystander keeps its rows

        runner.run()
        assert members[0].pooled is False
        assert members[1].pooled is False  # retired at finish, not evicted
        assert runner.pool.evictions == [(victim, EVICT_STRUCTURAL)]
        for member in members:
            got = collect_result(member.spec, member.simulation)
            assert _dumps(got) == _dumps(execute_spec(member.spec)), (
                f"{member.spec.run_id} diverged after the eviction"
            )

    def test_single_member_eviction_drains_the_pool(self):
        spec = _spec("solo", duration=80.0)
        member = BatchMember(spec, build_simulation(spec))
        runner = BatchRunner([member])
        runner.run_ticks(10)
        state = member.simulation.solver.machines["machine2"]
        state.k[("x", "y")] = 0.0
        state.set_k("x", "y", 0.0)
        assert len(runner.pool) == 0
        runner.run()
        got = collect_result(spec, member.simulation)
        assert _dumps(got) == _dumps(execute_spec(spec))


class TestMixedSignatureGrids:
    def test_two_signatures_pool_into_two_groups_and_match_solo(self):
        """Machines with different layout signatures batch side by side.

        One member's machine1 gets a table power model (same breakpoint
        values as the affine one, but a different plan signature), so
        the pool must keep two groups: one for the table machine, one
        shared by every affine machine across all members.  The
        reference is a twin simulation with the same swap on a private
        engine compiled *after* the swap.
        """
        specs = [_spec("affine-1", duration=150.0),
                 _spec("affine-2", duration=150.0),
                 _spec("mixed", duration=150.0)]
        sims = [build_simulation(s) for s in specs]

        def to_table(model):
            return TablePowerModel(
                [(0.0, model.p_base), (1.0, model.p_max)]
            )

        _swap_cpu_model(sims[2], "machine1", to_table)
        twin = build_simulation(specs[2])
        _swap_cpu_model(twin, "machine1", to_table)
        twin.solver._impl = CompiledEngine(twin.solver)

        members = [BatchMember(s, sim) for s, sim in zip(specs, sims)]
        runner = BatchRunner(members)
        assert all(m.pooled for m in members)
        assert len(runner.pool._groups) == 2
        runner.run()

        for spec, sim in zip(specs[:2], sims[:2]):
            assert _dumps(collect_result(spec, sim)) == _dumps(
                execute_spec(spec)
            )
        ticks = int(round(specs[2].duration / twin.dt))
        for _ in range(ticks):
            twin.step()
        got = collect_result(specs[2], sims[2]).to_dict()
        want = collect_result(specs[2], twin).to_dict()
        assert json.dumps(got["records"], sort_keys=True) == json.dumps(
            want["records"], sort_keys=True
        )
        assert got["summary"] == want["summary"]


class TestErrorEdges:
    def test_evicting_a_stranger_is_an_error(self):
        pool = BatchPool(1.0)
        simulation = build_simulation(_spec("stranger"))
        with pytest.raises(SweepError, match="not pooled"):
            pool.evict(simulation)

    def test_retiring_a_stranger_is_an_error(self):
        pool = BatchPool(1.0)
        pooled = build_simulation(_spec("resident"))
        assert pool.adopt(pooled)
        stranger = build_simulation(_spec("stranger"))
        with pytest.raises(SweepError, match="not pooled"):
            pool.retire_many([pooled, stranger])
        assert len(pool) == 1  # the failed retirement removed nothing

    def test_eviction_with_a_pending_tick_is_an_error(self):
        simulation = build_simulation(_spec("pending"))
        pool = BatchPool(simulation.dt)
        assert pool.adopt(simulation)
        simulation._run_until_tick()  # solver tick deferred to the flush
        with pytest.raises(SweepError, match="pending"):
            pool.evict(simulation)
        pool.flush()
        simulation._drain_tick_tail()
        pool.evict(simulation)  # fine at the tick boundary
        assert pool.evictions[0][0] is simulation

    def test_runner_rejects_crash_hooks(self):
        spec = _spec("crashy", crash_at=60.0, checkpoint_every=30.0)
        member = BatchMember(spec, build_simulation(spec))
        with pytest.raises(SweepError, match="crash_at"):
            BatchRunner([member])

    def test_run_batch_on_one_spec_equals_execute_spec(self):
        spec = _spec("one", duration=90.0)
        (got,) = run_batch([spec])
        assert _dumps(got) == _dumps(execute_spec(spec))
