"""Checkpoint/restore must continue a run bit-for-bit.

The acceptance bar is <= 1e-9 degrees C against an unsharded golden
run; the implementation round-trips every float verbatim (and the fault
RNG by internal state), so these tests assert exact equality — any
drift at all is a regression.
"""

import json

import pytest

from repro.cluster.simulation import ClusterSimulation, chaos_script
from repro.core.compiled import have_numpy
from repro.errors import ClusterError
from repro.faults.injector import FaultInjector
from repro.parallel import RunSpec, execute_spec
from repro.parallel.batch import BatchMember, BatchRunner, run_batch
from repro.parallel.engine import build_simulation


def _chaos_simulation(engine="python"):
    return ClusterSimulation(
        policy="freon",
        fiddle_script=chaos_script(),
        injector=FaultInjector(seed=11),
        engine=engine,
    )


def _run(simulation, ticks):
    for _ in range(ticks):
        simulation.step()


def _temperatures(simulation):
    return {
        name: simulation.solver.temperature(name, "CPU")
        for name in simulation.machines
    }


def _record_dicts(simulation):
    return [simulation._record_to_dict(r) for r in simulation.records]


class TestCheckpointRestore:
    #: Split point and horizon; crosses the t=480 emergency and the
    #: t=1060 tempd crash, so the resumed half replays real activity.
    SPLIT, END = 700, 1200

    @pytest.mark.parametrize(
        "policy", ["freon", "freon-ec", "traditional", "local-dvfs"]
    )
    def test_split_run_matches_golden(self, policy):
        golden = ClusterSimulation(policy=policy, fiddle_script=chaos_script(),
                                   injector=FaultInjector(seed=11))
        _run(golden, self.END)

        first = ClusterSimulation(policy=policy, fiddle_script=chaos_script(),
                                  injector=FaultInjector(seed=11))
        _run(first, self.SPLIT)
        # Force the plain-data contract: the checkpoint must survive
        # JSON, which is what a worker->parent hop serializes.
        state = json.loads(json.dumps(first.checkpoint()))

        second = ClusterSimulation(policy=policy, fiddle_script=chaos_script(),
                                   injector=FaultInjector(seed=11))
        second.apply_checkpoint(state)
        _run(second, self.END - self.SPLIT)

        assert _temperatures(second) == _temperatures(golden)
        assert _record_dicts(second) == _record_dicts(golden)
        assert second.result().fault_log == golden.result().fault_log
        assert second.result().adjustments == golden.result().adjustments

    @pytest.mark.skipif(not have_numpy(), reason="compiled engine needs numpy")
    def test_compiled_engine_round_trip(self):
        golden = _chaos_simulation(engine="compiled")
        _run(golden, self.END)

        first = _chaos_simulation(engine="compiled")
        _run(first, self.SPLIT)
        state = json.loads(json.dumps(first.checkpoint()))
        second = _chaos_simulation(engine="compiled")
        second.apply_checkpoint(state)
        _run(second, self.END - self.SPLIT)

        assert _temperatures(second) == _temperatures(golden)
        assert _record_dicts(second) == _record_dicts(golden)

    def test_restore_preserves_the_rng_stream(self):
        # Two sims checkpointed at the same tick draw identical fault
        # randomness afterwards; a third that never checkpointed is the
        # control.  (The chaos scenario's loss faults draw every send.)
        first = _chaos_simulation()
        _run(first, self.SPLIT)
        state = first.checkpoint()
        resumed = _chaos_simulation()
        resumed.apply_checkpoint(state)
        for sim in (first, resumed):
            _run(sim, 200)
        assert first.injector.checkpoint() == resumed.injector.checkpoint()

    def test_pause_mid_tempd_period_resumes_bit_exact(self):
        # Pause at t=90 — between the t=60 and t=120 tempd wakes and off
        # every daemon grid except admd's 5 s stats — so the resumed run
        # only stays aligned if the pending event queue itself was
        # checkpointed.  Then compare bit-for-bit with an unpaused run.
        golden = _chaos_simulation()
        _run(golden, 240)

        first = _chaos_simulation()
        _run(first, 90)
        state = json.loads(json.dumps(first.checkpoint()))
        # The wake cadence must be in the snapshot, not re-derived.
        kinds = {event[3] for event in state["kernel"]["events"]}
        assert "wake" in kinds and "tick" in kinds
        wakes = [e for e in state["kernel"]["events"] if e[3] == "wake"]
        assert {w[0] for w in wakes} == {120.0}

        second = _chaos_simulation()
        second.apply_checkpoint(state)
        _run(second, 150)

        assert _temperatures(second) == _temperatures(golden)
        assert _record_dicts(second) == _record_dicts(golden)
        assert second.result().adjustments == golden.result().adjustments
        assert (
            second.kernel.checkpoint()["events"]
            == golden.kernel.checkpoint()["events"]
        )

    def test_version_mismatch_rejected(self):
        simulation = _chaos_simulation()
        state = simulation.checkpoint()
        state["version"] = 999
        with pytest.raises(ClusterError, match="version"):
            simulation.apply_checkpoint(state)

    def test_policy_mismatch_rejected(self):
        simulation = _chaos_simulation()
        state = simulation.checkpoint()
        other = ClusterSimulation(policy="traditional")
        with pytest.raises(ClusterError, match="policy"):
            other.apply_checkpoint(state)

    def test_checkpoint_is_json_able(self):
        simulation = _chaos_simulation()
        _run(simulation, 50)
        text = json.dumps(simulation.checkpoint())
        assert json.loads(text)["time"] == 50.0


@pytest.mark.skipif(not have_numpy(), reason="the batched engine needs numpy")
class TestBatchedCheckpointResume:
    """An in-flight batched sweep pauses and resumes bit-exactly.

    ``BatchRunner.checkpoints()`` promises snapshots identical to the
    ones ``execute_spec`` would take at the same tick, so a paused
    batch may resume on either path (and a paused sequential run may
    resume batched) with byte-identical results.
    """

    #: Past the t=480 emergencies, so the paused state carries fiddled
    #: inlets, Freon weight adjustments, and a drained event backlog.
    SPLIT, DURATION = 500, 560.0

    def _specs(self):
        return [
            RunSpec(run_id="pause-a", policy="freon", engine="compiled",
                    scenario="emergency", duration=self.DURATION),
            RunSpec(run_id="pause-b", policy="freon-ec", engine="compiled",
                    scenario="chaos", duration=self.DURATION, seed=3),
            # An inline (pool-refused) member: its checkpoints must ride
            # the same lockstep cadence as its pooled neighbors'.
            RunSpec(run_id="pause-c", policy="traditional", engine="python",
                    scenario="emergency", duration=self.DURATION),
        ]

    def _paused_runner(self, specs):
        members = [BatchMember(s, build_simulation(s)) for s in specs]
        runner = BatchRunner(members)
        assert runner.run_ticks(self.SPLIT) == self.SPLIT
        return runner

    def test_batched_checkpoints_equal_sequential_checkpoints(self):
        specs = self._specs()
        runner = self._paused_runner(specs)
        snapshots = runner.checkpoints()
        assert sorted(snapshots) == sorted(s.run_id for s in specs)
        for spec in specs:
            solo = build_simulation(spec)
            _run(solo, self.SPLIT)
            assert (
                json.dumps(snapshots[spec.run_id], sort_keys=True)
                == json.dumps(solo.checkpoint(), sort_keys=True)
            ), f"{spec.run_id}: batched snapshot differs from sequential"

    def test_paused_batch_resumes_bit_exact_on_either_path(self):
        specs = self._specs()
        runner = self._paused_runner(specs)
        # The worker->parent hop serializes; force the plain-data form.
        snapshots = json.loads(json.dumps(runner.checkpoints()))

        batched = run_batch(specs, checkpoints=snapshots)
        sequential = [
            execute_spec(spec, checkpoint=snapshots[spec.run_id])
            for spec in specs
        ]
        unpaused = [execute_spec(spec) for spec in specs]
        for spec, via_batch, via_seq, golden in zip(
            specs, batched, sequential, unpaused
        ):
            assert via_batch.resumed and via_seq.resumed
            # Both resume paths agree byte-for-byte, registry included.
            assert (
                json.dumps(via_batch.to_dict(), sort_keys=True)
                == json.dumps(via_seq.to_dict(), sort_keys=True)
            ), f"{spec.run_id}: resume paths diverged"
            # And the physics matches a never-paused run exactly (the
            # registry legitimately differs: a resumed run's telemetry
            # covers only the tail).
            want = golden.to_dict()
            got = via_batch.to_dict()
            assert got["records"] == want["records"]
            assert got["summary"] == want["summary"]

    def test_sequential_pause_resumes_batched(self):
        spec = self._specs()[0]
        solo = build_simulation(spec)
        _run(solo, self.SPLIT)
        snapshot = json.loads(json.dumps(solo.checkpoint()))
        (resumed,) = run_batch([spec], checkpoints={spec.run_id: snapshot})
        assert resumed.resumed
        golden = execute_spec(spec)
        assert resumed.to_dict()["records"] == golden.to_dict()["records"]
        assert resumed.to_dict()["summary"] == golden.to_dict()["summary"]
