"""Tests for the fiddle runtime-mutation tool."""

import pytest

from repro.config import table1
from repro.core.solver import Solver
from repro.errors import FiddleError
from repro.fiddle.tool import Fiddle


@pytest.fixture
def fiddle(solver):
    return Fiddle(solver)


class TestVerbs:
    def test_temperature_forces_node(self, solver, fiddle):
        fiddle.temperature("machine1", table1.CPU, 55.0)
        assert solver.temperature("machine1", table1.CPU) == 55.0

    def test_inlet_override_persists(self, solver, fiddle):
        fiddle.temperature("machine1", "inlet", 30.0)
        solver.run(500)
        assert solver.temperature("machine1", "inlet") == pytest.approx(30.0)

    def test_restore_clears_inlet(self, solver, fiddle):
        fiddle.temperature("machine1", "inlet", 30.0)
        fiddle.restore("machine1")
        solver.run(100)
        assert solver.temperature("machine1", "inlet") == pytest.approx(
            table1.INLET_TEMPERATURE
        )

    def test_k_changes_edge(self, solver, fiddle):
        fiddle.k("machine1", table1.CPU, table1.CPU_AIR, 2.0)
        assert solver.machine("machine1").edge_k(
            table1.CPU, table1.CPU_AIR
        ) == pytest.approx(2.0)

    def test_fraction_changes_edge(self, solver, fiddle):
        fiddle.fraction("machine1", table1.INLET, table1.DISK_AIR, 0.2)
        assert solver.machine("machine1").fractions[
            (table1.INLET, table1.DISK_AIR)
        ] == pytest.approx(0.2)

    def test_fan_changes_flow(self, solver, fiddle):
        fiddle.fan("machine1", 20.0)
        assert solver.machine("machine1").fan_cfm == pytest.approx(20.0)

    def test_power_scales_component(self, solver, fiddle):
        solver.set_utilization("machine1", table1.CPU, 1.0)
        fiddle.power("machine1", table1.CPU, 0.5)
        assert solver.machine("machine1").power(table1.CPU) == pytest.approx(15.5)

    def test_power_scaling_cools_cpu(self, solver, fiddle):
        # The paper's DVFS/throttling emulation path: halving CPU power
        # at full utilization must cool the CPU.
        solver.set_utilization("machine1", table1.CPU, 1.0)
        solver.run(4000)
        hot = solver.temperature("machine1", table1.CPU)
        fiddle.power("machine1", table1.CPU, 0.4)
        solver.run(4000)
        assert solver.temperature("machine1", table1.CPU) < hot - 10.0

    def test_log_records_actions(self, fiddle):
        fiddle.temperature("machine1", "inlet", 30.0)
        fiddle.fan("machine1", 25.0)
        assert len(fiddle.log) == 2
        assert "inlet" in fiddle.log[0]


class TestCommandStrings:
    def test_paper_example(self, solver, fiddle):
        # Figure 4's command verbatim.
        fiddle.command("fiddle machine1 temperature inlet 30")
        solver.run(100)
        assert solver.temperature("machine1", "inlet") == pytest.approx(30.0)

    def test_leading_fiddle_optional(self, solver, fiddle):
        fiddle.command("machine1 temperature inlet 25")
        assert solver.machine("machine1").inlet_override == pytest.approx(25.0)

    def test_quoted_multiword_names(self, solver, fiddle):
        fiddle.command('fiddle machine1 k "CPU" "CPU Air" 1.5')
        assert solver.machine("machine1").edge_k(
            table1.CPU, table1.CPU_AIR
        ) == pytest.approx(1.5)

    def test_fraction_command(self, solver, fiddle):
        fiddle.command('fiddle machine1 fraction "Inlet" "Disk Air" 0.3')
        assert solver.machine("machine1").fractions[
            (table1.INLET, table1.DISK_AIR)
        ] == pytest.approx(0.3)

    def test_fan_command(self, solver, fiddle):
        fiddle.command("fiddle machine1 fan 50")
        assert solver.machine("machine1").fan_cfm == 50.0

    def test_power_command(self, solver, fiddle):
        fiddle.command('fiddle machine1 power "CPU" 0.7')
        solver.set_utilization("machine1", table1.CPU, 1.0)
        assert solver.machine("machine1").power(table1.CPU) == pytest.approx(21.7)

    def test_restore_command(self, solver, fiddle):
        fiddle.command("fiddle machine1 temperature inlet 40")
        fiddle.command("fiddle machine1 restore")
        assert solver.machine("machine1").inlet_override is None

    def test_cluster_source_command(self, cluster):
        solver = Solver(list(cluster.machines.values()), cluster=cluster,
                        record=False)
        fiddle = Fiddle(solver)
        fiddle.command('fiddle cluster source "AC" 30')
        solver.run(50)
        assert solver.temperature("machine1", "inlet") == pytest.approx(30.0)

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "fiddle",
            "fiddle machine1",
            "fiddle machine1 wobble inlet 30",
            "fiddle machine1 temperature inlet",
            "fiddle machine1 temperature inlet thirty",
            "fiddle machine1 fan",
            "fiddle cluster source onlyname",
            "fiddle machine1 k CPU 0.5",
        ],
    )
    def test_malformed_commands_rejected(self, fiddle, line):
        with pytest.raises(FiddleError):
            fiddle.command(line)

    def test_unknown_machine_propagates(self, fiddle):
        from repro.errors import UnknownSensorError

        with pytest.raises(UnknownSensorError):
            fiddle.command("fiddle machine9 temperature inlet 30")
