"""Tests for fiddle scripts (Figure 4 syntax) and their execution."""

import pytest

from repro.config import table1
from repro.core.solver import Solver
from repro.core.trace import TracePoint, UtilizationTrace, run_offline
from repro.errors import FiddleError
from repro.fiddle.script import (
    ScriptRunner,
    events_from_script,
    parse_script,
)

FIGURE4 = """#!/bin/bash
sleep 100
fiddle machine1 temperature inlet 30
sleep 200
fiddle machine1 temperature inlet 21.6
"""


class TestParseScript:
    def test_figure4(self):
        commands = parse_script(FIGURE4)
        assert len(commands) == 2
        assert commands[0].time == pytest.approx(100.0)
        assert commands[1].time == pytest.approx(300.0)
        assert "30" in commands[0].command

    def test_sleeps_accumulate(self):
        script = "sleep 10\nsleep 20\nfiddle m1 fan 30\n"
        commands = parse_script(script)
        assert commands[0].time == pytest.approx(30.0)

    def test_comments_and_blanks_ignored(self):
        script = "# setup\n\nsleep 5\nfiddle m1 fan 10\n"
        assert len(parse_script(script)) == 1

    def test_commands_at_time_zero(self):
        commands = parse_script("fiddle m1 fan 10\n")
        assert commands[0].time == 0.0

    @pytest.mark.parametrize(
        "script",
        [
            "sleep\n",
            "sleep abc\n",
            "sleep -5\n",
            "reboot now\n",
        ],
    )
    def test_malformed_scripts_rejected(self, script):
        with pytest.raises(FiddleError):
            parse_script(script)


class TestScriptRunner:
    def test_fires_in_order_once(self, solver):
        runner = ScriptRunner(solver, parse_script(FIGURE4))
        assert runner.pending == 2
        assert runner.advance_to(50.0) == []
        fired = runner.advance_to(100.0)
        assert len(fired) == 1
        assert runner.pending == 1
        assert solver.machine("machine1").inlet_override == pytest.approx(30.0)
        # Re-advancing past the same time does not re-fire.
        assert runner.advance_to(150.0) == []

    def test_large_jump_fires_all_due(self, solver):
        runner = ScriptRunner(solver, parse_script(FIGURE4))
        fired = runner.advance_to(1000.0)
        assert len(fired) == 2
        assert solver.machine("machine1").inlet_override == pytest.approx(21.6)

    def test_audit_log(self, solver):
        runner = ScriptRunner(solver, parse_script(FIGURE4))
        runner.advance_to(500.0)
        assert len(runner.fiddle.log) == 2


class TestOfflineEvents:
    def test_script_drives_offline_run(self, layout):
        trace = UtilizationTrace(
            "machine1", [TracePoint(0.0, {table1.CPU: 0.5})]
        )
        events = events_from_script(FIGURE4)
        history = run_offline(
            [layout], [trace], duration=400.0, events=events
        )
        inlet = history.series("machine1", table1.INLET)
        times = history.times("machine1")
        # Before 100 s: normal inlet; between 100 and 300: 30 C.
        assert inlet[times.index(50.0)] == pytest.approx(21.6)
        assert inlet[times.index(200.0)] == pytest.approx(30.0)
        assert inlet[times.index(390.0)] == pytest.approx(21.6)

    def test_emergency_heats_and_recovery_cools(self, layout):
        # A full emergency cycle: the CPU heats while the cooling is
        # broken and recovers afterwards.
        trace = UtilizationTrace(
            "machine1", [TracePoint(0.0, {table1.CPU: 0.5})]
        )
        script = "sleep 1000\nfiddle machine1 temperature inlet 38\n" \
                 "sleep 2000\nfiddle machine1 restore\n"
        history = run_offline(
            [layout], [trace], duration=6000.0,
            events=events_from_script(script),
        )
        cpu = history.series("machine1", table1.CPU)
        times = history.times("machine1")
        before = cpu[times.index(1000.0)]
        during = cpu[times.index(3000.0)]
        after = cpu[times.index(6000.0)]
        assert during > before + 10.0
        assert after < during - 10.0
