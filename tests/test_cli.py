"""Tests for the command-line tools."""

import io
import json

import pytest

from repro.cli import main
from repro.config import table1
from repro.config.layouts import validation_cluster, validation_machine
from repro.core.trace import TracePoint, UtilizationTrace, save_traces
from repro.mdot.writer import dumps


@pytest.fixture
def mdot_file(tmp_path):
    cluster = validation_cluster()
    path = tmp_path / "system.mdot"
    path.write_text(dumps(list(cluster.machines.values()), cluster))
    return path


@pytest.fixture
def single_machine_mdot(tmp_path):
    path = tmp_path / "one.mdot"
    path.write_text(dumps([validation_machine()]))
    return path


@pytest.fixture
def trace_file(tmp_path):
    trace = UtilizationTrace(
        "machine1",
        [
            TracePoint(0.0, {table1.CPU: 0.5, table1.DISK_PLATTERS: 0.2}),
            TracePoint(100.0, {table1.CPU: 0.9, table1.DISK_PLATTERS: 0.4}),
        ],
    )
    path = tmp_path / "trace.csv"
    save_traces([trace], path)
    return path


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCheck:
    def test_valid_file(self, mdot_file):
        code, output = run_cli("check", str(mdot_file))
        assert code == 0
        assert "OK" in output
        assert "machine 'machine1'" in output
        assert "cluster: 4 machines" in output

    def test_invalid_file(self, tmp_path):
        bad = tmp_path / "bad.mdot"
        bad.write_text('machine "m" { inlet = "nope"; }')
        code, output = run_cli("check", str(bad))
        assert code == 1
        assert "error" in output

    def test_missing_file(self, tmp_path):
        code, output = run_cli("check", str(tmp_path / "ghost.mdot"))
        assert code == 1


class TestSolve:
    def test_offline_solve(self, single_machine_mdot, trace_file, tmp_path):
        output_path = tmp_path / "history.csv"
        code, output = run_cli(
            "solve",
            str(single_machine_mdot),
            str(trace_file),
            str(output_path),
            "--duration", "200",
        )
        assert code == 0
        assert output_path.exists()
        lines = output_path.read_text().strip().splitlines()
        assert lines[0].startswith("time,machine,node")
        assert len(lines) > 200

    def test_solve_with_fiddle_script(
        self, single_machine_mdot, trace_file, tmp_path
    ):
        script = tmp_path / "emergency.fiddle"
        script.write_text("sleep 50\nfiddle machine1 temperature inlet 40\n")
        output_path = tmp_path / "history.csv"
        code, _ = run_cli(
            "solve",
            str(single_machine_mdot),
            str(trace_file),
            str(output_path),
            "--duration", "150",
            "--fiddle", str(script),
        )
        assert code == 0
        text = output_path.read_text()
        assert "40.0000" in text  # the forced inlet value appears

    def test_solve_trace_machine_mismatch(
        self, single_machine_mdot, tmp_path
    ):
        trace = UtilizationTrace("other", [TracePoint(0.0, {})])
        path = tmp_path / "bad_trace.csv"
        save_traces([trace], path)
        code, output = run_cli(
            "solve", str(single_machine_mdot), str(path),
            str(tmp_path / "out.csv"),
        )
        assert code == 1
        assert "error" in output


class TestGraphviz:
    def test_export_first_machine(self, mdot_file):
        code, output = run_cli("graphviz", str(mdot_file))
        assert code == 0
        assert output.startswith('digraph "machine1"')

    def test_export_named_machine(self, mdot_file):
        code, output = run_cli(
            "graphviz", str(mdot_file), "--machine", "machine3"
        )
        assert code == 0
        assert 'digraph "machine3"' in output

    def test_unknown_machine(self, mdot_file):
        code, output = run_cli(
            "graphviz", str(mdot_file), "--machine", "machine9"
        )
        assert code == 2
        assert "error" in output


class TestFreon:
    def test_short_freon_run(self):
        code, output = run_cli(
            "freon", "--policy", "freon", "--duration", "300"
        )
        assert code == 0
        assert "policy: freon" in output
        assert "dropped requests" in output

    def test_policy_none_without_emergency(self):
        code, output = run_cli(
            "freon", "--policy", "none", "--duration", "120",
            "--no-emergency",
        )
        assert code == 0
        assert "peak CPU temperatures" in output

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("freon", "--policy", "cryogenics")

    def test_event_mode_run(self):
        code, output = run_cli(
            "freon", "--policy", "freon", "--duration", "300",
            "--mode", "event",
        )
        assert code == 0
        assert "policy: freon" in output

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("freon", "--mode", "turbo")

    def test_fast_forward_runs_clean(self):
        # The default epsilon is conservative enough that a 300 s run
        # never coasts; the flag must still run cleanly and keep the
        # normal summary output.
        code, output = run_cli(
            "freon", "--policy", "none", "--duration", "300",
            "--no-emergency", "--fast-forward",
        )
        assert code == 0
        assert "peak CPU temperatures" in output

    def test_experiment_preset_with_telemetry(self, tmp_path):
        jsonl = tmp_path / "fig11.jsonl"
        code, output = run_cli(
            "freon", "--experiment", "fig11", "--duration", "300",
            "--telemetry", str(jsonl),
        )
        assert code == 0
        assert "experiment fig11: policy freon" in output
        assert "telemetry:" in output
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        metric_names = {r["name"] for r in rows if r["type"] == "metric"}
        # The stream covers every instrumented layer.
        assert any(n.startswith("solver_") for n in metric_names)
        assert any(n.startswith("sensor_") for n in metric_names)
        assert any(n.startswith("tempd_") for n in metric_names)
        assert any(n.startswith("freon_") for n in metric_names)
        assert any(n.startswith("cluster_") for n in metric_names)
        assert any(r["type"] == "sample" for r in rows)
        prom = jsonl.with_suffix(".prom")
        assert "# TYPE solver_ticks_total counter" in prom.read_text()


class TestChaos:
    def test_short_chaos_run(self):
        code, output = run_cli(
            "chaos", "--duration", "200", "--seed", "3"
        )
        assert code == 0
        assert "fault seed: 3" in output
        assert "datagrams:" in output
        assert "inject" in output  # fault log lists the loss injection

    def test_chaos_with_custom_script(self, tmp_path):
        script = tmp_path / "storm.fiddle"
        script.write_text(
            "fault net loss 0.5\n"
            "sleep 60\n"
            "fault machine1 daemon crash tempd\n"
        )
        code, output = run_cli(
            "chaos", "--duration", "150", "--script", str(script)
        )
        assert code == 0
        assert "watchdog restarted machine1/tempd" in output

    def test_chaos_telemetry_mirrors_fault_log(self, tmp_path):
        jsonl = tmp_path / "chaos.jsonl"
        # Long enough for the t=480 emergency plus the diurnal load rise
        # to push a CPU over threshold, so tempd has sent ADJUST
        # datagrams and the per-fate metric rows exist.
        code, output = run_cli(
            "chaos", "--duration", "1200", "--telemetry", str(jsonl),
        )
        assert code == 0
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        fault_events = [
            r for r in rows
            if r["type"] == "event" and r["name"].startswith("fault_")
        ]
        assert fault_events, "fault injections must appear in the stream"
        datagram_rows = [
            r for r in rows
            if r["type"] == "metric" and r["name"] == "freon_datagrams_total"
        ]
        sent = next(
            r["value"] for r in datagram_rows if r["labels"]["fate"] == "sent"
        )
        assert sent > 0


class TestTop:
    def test_plain_dashboard_run(self):
        code, output = run_cli(
            "top", "--duration", "180", "--every", "90", "--plain"
        )
        assert code == 0
        assert "repro top" in output
        assert "solver_ticks_total" in output
        assert "done: policy freon" in output
        # No ANSI escapes in plain mode.
        assert "\x1b[" not in output

    def test_default_mode_clears_screen(self):
        code, output = run_cli("top", "--duration", "120", "--every", "120")
        assert code == 0
        assert "\x1b[2J" in output

    def test_chaos_mode_with_telemetry_dump(self, tmp_path):
        jsonl = tmp_path / "top.jsonl"
        code, output = run_cli(
            "top", "--chaos", "--duration", "120", "--every", "60",
            "--plain", "--telemetry", str(jsonl),
        )
        assert code == 0
        assert "telemetry:" in output
        assert jsonl.exists()
        assert jsonl.with_suffix(".prom").exists()


class TestSweep:
    def test_grid_file_run(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "base": {"scenario": "none", "duration": 60.0},
            "axes": {"policy": ["none", "freon"]},
        }))
        output_path = tmp_path / "sweep.json"
        code, output = run_cli(
            "sweep", str(grid), "--output", str(output_path),
        )
        assert code == 0
        assert "sweep: 2 run(s)" in output
        assert "policy=freon:" in output
        artifact = json.loads(output_path.read_text())
        assert [r["run_id"] for r in artifact["runs"]] == [
            "policy=freon", "policy=none",
        ]
        assert output_path.with_suffix(".prom").exists()

    def test_preset_with_overrides(self, tmp_path):
        output_path = tmp_path / "thr.json"
        code, output = run_cli(
            "sweep", "--preset", "thresholds", "--duration", "60",
            "--checkpoint-every", "30", "--output", str(output_path),
        )
        assert code == 0
        assert "sweep: 3 run(s)" in output
        artifact = json.loads(output_path.read_text())
        specs = [r["spec"] for r in artifact["runs"]]
        assert [s["cpu_high"] for s in specs] == [65.0, 67.0, 69.0]
        assert all(s["duration"] == 60.0 for s in specs)
        assert all(s["checkpoint_every"] == 30.0 for s in specs)

    def test_grid_and_preset_are_mutually_exclusive(self, tmp_path):
        code, output = run_cli("sweep")
        assert code == 2
        assert "exactly one" in output
        code, output = run_cli("sweep", "grid.json", "--preset", "fig11")
        assert code == 2

    def test_bad_grid_reports_error(self, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({"axes": {"policyy": ["freon"]}}))
        code, output = run_cli("sweep", str(grid))
        assert code == 1
        assert "unknown RunSpec field" in output


class TestScale:
    def test_generated_grid_run(self):
        code, output = run_cli(
            "scale", "--machines", "60", "--zones", "3",
            "--machines-per-rack", "5", "--duration", "120",
        )
        assert code == 0
        assert "scale: 60 machines in 3 zone(s), 120 ticks" in output
        assert "zone0: CPU max" in output
        assert "zone2: CPU max" in output

    def test_topology_file_and_telemetry(self, tmp_path):
        from repro.topology import grid_topology

        room = tmp_path / "room.json"
        room.write_text(grid_topology(20, zones=2, machines_per_rack=5).to_json())
        telemetry_path = tmp_path / "scale.jsonl"
        code, output = run_cli(
            "scale", "--topology", str(room), "--duration", "90",
            "--telemetry", str(telemetry_path),
        )
        assert code == 0
        assert "scale: 20 machines in 2 zone(s)" in output
        assert telemetry_path.exists()
        snapshot = telemetry_path.with_suffix(".prom").read_text()
        assert "sim_machines 20" in snapshot
        assert 'scale_zone_cpu_max_celsius{zone="zone0"}' in snapshot

    def test_supply_override_heats_room(self):
        code_cool, out_cool = run_cli(
            "scale", "--machines", "10", "--zones", "1",
            "--duration", "200",
        )
        code_hot, out_hot = run_cli(
            "scale", "--machines", "10", "--zones", "1",
            "--duration", "200", "--supply", "35",
        )
        assert code_cool == 0 and code_hot == 0

        def peak(text):
            for line in text.splitlines():
                if "zone0: CPU max" in line:
                    return float(line.split("CPU max ")[1].split("C,")[0])
            raise AssertionError(text)

        assert peak(out_hot) > peak(out_cool) + 5.0

    def test_missing_topology_file(self, tmp_path):
        code, output = run_cli(
            "scale", "--topology", str(tmp_path / "missing.json"),
        )
        assert code == 1
        assert "cannot read topology file" in output
